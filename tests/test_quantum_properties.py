"""Property-based tests (hypothesis) for the quantum substrate.

The central invariant: the symbolic tracker and the exact stabilizer
simulator agree on every fusion sequence — whatever GHZ groups the tracker
reports must be exact GHZ states (up to local Paulis) in the tableau.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.quantum.fusion import ghz_measurement, prepare_bell_pair
from repro.quantum.stabilizer import StabilizerTableau
from repro.quantum.tracker import EntanglementTracker


@settings(max_examples=40, deadline=None)
@given(
    num_pairs=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_star_fusion_any_arity(num_pairs, seed):
    """n-fusion of n Bell pairs yields an n-GHZ on the partners."""
    t = StabilizerTableau(2 * num_pairs, np.random.default_rng(seed))
    switch, remote = [], []
    for i in range(num_pairs):
        prepare_bell_pair(t, 2 * i, 2 * i + 1)
        switch.append(2 * i)
        remote.append(2 * i + 1)
    ghz_measurement(t, switch)
    assert t.is_ghz_up_to_pauli(remote)
    for q in switch:
        assert t.is_product_z_eigenstate(q)


@st.composite
def fusion_scenarios(draw):
    """A random line of Bell pairs plus a random sequence of fusions.

    Qubits 2i / 2i+1 form pair i.  Each fusion step picks 2-3 distinct
    live groups and measures one qubit of each at a virtual switch.
    """
    num_pairs = draw(st.integers(min_value=2, max_value=7))
    steps = []
    # Track group membership symbolically while generating, so the drawn
    # steps are always legal.
    groups = {i: [2 * i, 2 * i + 1] for i in range(num_pairs)}
    num_steps = draw(st.integers(min_value=1, max_value=3))
    for _ in range(num_steps):
        if len(groups) < 2:
            break
        group_ids = sorted(groups)
        k = draw(st.integers(min_value=2, max_value=min(3, len(group_ids))))
        chosen = draw(
            st.lists(
                st.sampled_from(group_ids), min_size=k, max_size=k, unique=True
            )
        )
        measured = []
        for gid in chosen:
            members = groups[gid]
            index = draw(st.integers(min_value=0, max_value=len(members) - 1))
            measured.append(members[index])
        survivors = [
            q for gid in chosen for q in groups[gid] if q not in measured
        ]
        if len(survivors) < 2:
            continue
        for gid in chosen:
            del groups[gid]
        new_gid = max(groups, default=-1) + 1 + num_pairs
        groups[new_gid] = survivors
        steps.append(measured)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return num_pairs, steps, seed


@settings(max_examples=40, deadline=None)
@given(fusion_scenarios())
def test_tracker_matches_stabilizer_on_random_fusions(scenario):
    """After any legal fusion sequence, every tracker group is an exact
    GHZ state in the tableau, and measured qubits are disentangled."""
    num_pairs, steps, seed = scenario
    tableau = StabilizerTableau(2 * num_pairs, np.random.default_rng(seed))
    tracker = EntanglementTracker()
    for i in range(num_pairs):
        prepare_bell_pair(tableau, 2 * i, 2 * i + 1)
        tracker.create_bell_pair(2 * i, 2 * i + 1)
    all_measured = set()
    for measured in steps:
        ghz_measurement(tableau, measured)
        tracker.fuse(measured, success=True)
        all_measured.update(measured)
    for group in tracker.groups():
        assert tableau.is_ghz_up_to_pauli(list(group.sorted_qubits()))
    for q in all_measured:
        assert not tracker.is_entangled(q)
        assert tableau.is_product_z_eigenstate(q)


@settings(max_examples=30, deadline=None)
@given(
    chain_length=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_repeater_chain_always_connects_ends(chain_length, seed):
    """Swapping along a chain of any length yields an end-to-end pair."""
    t = StabilizerTableau(2 * chain_length, np.random.default_rng(seed))
    tracker = EntanglementTracker()
    for i in range(chain_length):
        prepare_bell_pair(t, 2 * i, 2 * i + 1)
        tracker.create_bell_pair(2 * i, 2 * i + 1)
    for i in range(chain_length - 1):
        ghz_measurement(t, [2 * i + 1, 2 * i + 2])
        tracker.fuse([2 * i + 1, 2 * i + 2], success=True)
    assert tracker.same_group(0, 2 * chain_length - 1)
    assert t.is_bell_pair_up_to_pauli(0, 2 * chain_length - 1)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    gates=st.lists(
        st.tuples(st.sampled_from(["h", "s", "x", "z", "cnot", "cz"]),
                  st.integers(0, 3), st.integers(0, 3)),
        min_size=0,
        max_size=25,
    ),
)
def test_measurement_idempotence_after_random_clifford(seed, gates):
    """After any Clifford circuit, re-measuring a qubit repeats its value."""
    t = StabilizerTableau(4, np.random.default_rng(seed))
    for name, a, b in gates:
        if name in ("cnot", "cz") and a == b:
            continue
        if name == "cnot":
            t.cnot(a, b)
        elif name == "cz":
            t.cz(a, b)
        else:
            getattr(t, name)(a)
    for q in range(4):
        first = t.measure_z(q)
        assert t.measure_z(q) == first

"""Unit tests for nodes, edges and the QuantumNetwork graph."""

import pytest

from repro.exceptions import (
    ConfigurationError,
    EdgeNotFoundError,
    NodeNotFoundError,
    TopologyError,
)
from repro.network.edge import Edge, edge_key
from repro.network.graph import QuantumNetwork
from repro.network.node import Node, NodeKind, QuantumSwitch, QuantumUser
from repro.utils.geometry import Point


class TestNode:
    def test_user_has_unlimited_capacity(self):
        user = QuantumUser(0, Point(0, 0))
        assert user.is_user
        assert user.qubit_capacity is None

    def test_switch_capacity(self):
        switch = QuantumSwitch(1, Point(0, 0), 10)
        assert switch.is_switch
        assert switch.qubit_capacity == 10

    def test_switch_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            QuantumSwitch(1, Point(0, 0), 0)

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Node(-1, NodeKind.USER, Point(0, 0))


class TestEdge:
    def test_canonical_ordering(self):
        assert Edge(2, 1, 5.0) == Edge(1, 2, 5.0)
        assert Edge(2, 1, 5.0).key == (1, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            Edge(1, 1, 0.0)
        with pytest.raises(ConfigurationError):
            edge_key(3, 3)

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            Edge(0, 1, -1.0)

    def test_other_endpoint(self):
        edge = Edge(1, 2, 3.0)
        assert edge.other_endpoint(1) == 2
        assert edge.other_endpoint(2) == 1
        with pytest.raises(ConfigurationError):
            edge.other_endpoint(9)


def small_network():
    network = QuantumNetwork()
    network.add_node(QuantumUser(0, Point(0, 0)))
    network.add_node(QuantumSwitch(1, Point(3, 4), 10))
    network.add_node(QuantumSwitch(2, Point(6, 8), 10))
    network.add_edge(0, 1)
    network.add_edge(1, 2)
    return network


class TestQuantumNetwork:
    def test_add_and_query(self):
        net = small_network()
        assert net.num_nodes == 3
        assert net.num_edges == 2
        assert net.users() == [0]
        assert net.switches() == [1, 2]
        assert net.neighbors(1) == [0, 2]
        assert net.degree(1) == 2
        assert 0 in net
        assert 9 not in net

    def test_edge_length_defaults_to_euclidean(self):
        net = small_network()
        assert net.edge_length(0, 1) == pytest.approx(5.0)
        assert net.edge_length(1, 2) == pytest.approx(5.0)

    def test_explicit_edge_length(self):
        net = small_network()
        net.add_edge(0, 2, length=42.0)
        assert net.edge_length(0, 2) == 42.0

    def test_duplicate_node_rejected(self):
        net = small_network()
        with pytest.raises(TopologyError):
            net.add_node(QuantumUser(0, Point(9, 9)))

    def test_duplicate_edge_rejected(self):
        net = small_network()
        with pytest.raises(TopologyError):
            net.add_edge(1, 0)

    def test_missing_node_queries(self):
        net = small_network()
        with pytest.raises(NodeNotFoundError):
            net.node(99)
        with pytest.raises(NodeNotFoundError):
            net.neighbors(99)
        with pytest.raises(NodeNotFoundError):
            net.add_edge(0, 99)

    def test_missing_edge_queries(self):
        net = small_network()
        with pytest.raises(EdgeNotFoundError):
            net.edge(0, 2)
        with pytest.raises(EdgeNotFoundError):
            net.remove_edge(0, 2)

    def test_remove_edge(self):
        net = small_network()
        net.remove_edge(0, 1)
        assert not net.has_edge(0, 1)
        assert net.neighbors(0) == []

    def test_connected_components(self):
        net = small_network()
        assert net.is_connected()
        net.remove_edge(0, 1)
        components = net.connected_components()
        assert len(components) == 2
        assert components[0] == {1, 2}

    def test_hop_distance(self):
        net = small_network()
        assert net.hop_distance(0, 2) == 2
        assert net.hop_distance(0, 0) == 0
        net.remove_edge(1, 2)
        assert net.hop_distance(0, 2) is None

    def test_average_degree_by_kind(self):
        net = small_network()
        assert net.average_degree(NodeKind.USER) == 1.0
        assert net.average_degree(NodeKind.SWITCH) == pytest.approx(1.5)

    def test_copy_is_independent(self):
        net = small_network()
        clone = net.copy()
        clone.remove_edge(0, 1)
        assert net.has_edge(0, 1)
        assert not clone.has_edge(0, 1)

    def test_induced_subgraph(self):
        net = small_network()
        sub = net.induced_subgraph([1, 2])
        assert sub.nodes() == [1, 2]
        assert sub.has_edge(1, 2)
        assert not sub.has_node(0)

    def test_edges_listing_sorted(self):
        net = small_network()
        keys = net.edge_keys()
        assert keys == sorted(keys)

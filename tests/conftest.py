"""Shared fixtures: small deterministic networks and models."""

from __future__ import annotations

import pytest

from repro.network.demands import Demand, DemandSet
from repro.network.graph import QuantumNetwork
from repro.network.node import QuantumSwitch, QuantumUser
from repro.quantum.noise import LinkModel, SwapModel
from repro.utils.geometry import Point
from repro.utils.rng import ensure_rng


def make_line_network(num_switches: int = 3, capacity: int = 10,
                      spacing: float = 1000.0) -> QuantumNetwork:
    """User - switch - ... - switch - user, all on a line.

    Node ids: 0..num_switches-1 are switches, then num_switches is the
    source user and num_switches+1 the destination user.
    """
    network = QuantumNetwork()
    for i in range(num_switches):
        network.add_node(
            QuantumSwitch(i, Point(spacing * (i + 1), 0.0), capacity)
        )
    source = num_switches
    destination = num_switches + 1
    network.add_node(QuantumUser(source, Point(0.0, 0.0)))
    network.add_node(
        QuantumUser(destination, Point(spacing * (num_switches + 1), 0.0))
    )
    network.add_edge(source, 0)
    for i in range(num_switches - 1):
        network.add_edge(i, i + 1)
    network.add_edge(num_switches - 1, destination)
    return network


def make_diamond_network(capacity: int = 10) -> QuantumNetwork:
    """Two disjoint switch paths between two users (a 'diamond').

    Ids: users 0 (source) and 1 (destination); switches 2, 3 on the upper
    path and 4, 5 on the lower path.
    """
    network = QuantumNetwork()
    network.add_node(QuantumUser(0, Point(0.0, 0.0)))
    network.add_node(QuantumUser(1, Point(3000.0, 0.0)))
    network.add_node(QuantumSwitch(2, Point(1000.0, 1000.0), capacity))
    network.add_node(QuantumSwitch(3, Point(2000.0, 1000.0), capacity))
    network.add_node(QuantumSwitch(4, Point(1000.0, -1000.0), capacity))
    network.add_node(QuantumSwitch(5, Point(2000.0, -1000.0), capacity))
    network.add_edge(0, 2)
    network.add_edge(2, 3)
    network.add_edge(3, 1)
    network.add_edge(0, 4)
    network.add_edge(4, 5)
    network.add_edge(5, 1)
    return network


@pytest.fixture
def line_network() -> QuantumNetwork:
    return make_line_network()


@pytest.fixture
def diamond_network() -> QuantumNetwork:
    return make_diamond_network()


@pytest.fixture
def uniform_link_model() -> LinkModel:
    return LinkModel(fixed_p=0.5)


@pytest.fixture
def swap_model() -> SwapModel:
    return SwapModel(q=0.9)


@pytest.fixture
def rng():
    return ensure_rng(12345)


@pytest.fixture
def line_demand(line_network) -> Demand:
    users = line_network.users()
    return Demand(0, users[0], users[1])


@pytest.fixture
def diamond_demand() -> Demand:
    return Demand(0, 0, 1)

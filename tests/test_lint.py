"""Rule-by-rule tests for the repro.lint static-analysis pass.

Each RPL rule gets at least one minimal bad fixture it must fire on and
one minimal good fixture it must stay silent on; the suppression
grammar, JSON schema, CLI exit codes and the "shipped tree is clean"
guarantee are covered separately.
"""

from __future__ import annotations

import json
import pathlib
import textwrap

import pytest

from repro.lint import ALL_RULES, Diagnostic, parse_suppressions, run_lint
from repro.lint.__main__ import main as lint_main
from repro.lint.diagnostics import ALL_CODES, is_suppressed
from repro.lint.engine import lint_source, module_path_for

REPO_SRC = pathlib.Path(__file__).parent.parent / "src"


def codes(source: str, path: str = "module.py"):
    """The rule codes firing on *source* when linted as *path*."""
    return [d.code for d in lint_source(textwrap.dedent(source), path)]


# ----------------------------------------------------------------------
# RPL001: nondeterminism primitives


class TestRPL001Nondeterminism:
    def test_fires_on_stdlib_random_import(self):
        assert codes("import random\n") == ["RPL001"]

    def test_fires_on_from_random_import(self):
        assert codes("from random import shuffle\n") == ["RPL001"]

    def test_fires_on_numpy_global_state(self):
        assert codes("import numpy as np\nnp.random.seed(0)\n") == ["RPL001"]

    def test_fires_on_wall_clock(self):
        assert codes("import time\nt = time.time()\n") == ["RPL001"]
        assert codes("from time import time\n") == ["RPL001"]

    def test_fires_on_datetime_now(self):
        assert codes(
            "from datetime import datetime\nx = datetime.now()\n"
        ) == ["RPL001"]
        assert codes(
            "import datetime\nx = datetime.datetime.now()\n"
        ) == ["RPL001"]

    def test_fires_on_unseeded_default_rng(self):
        assert codes(
            "import numpy as np\nr = np.random.default_rng()\n"
        ) == ["RPL001"]
        assert codes(
            "from numpy.random import default_rng\nr = default_rng(None)\n"
        ) == ["RPL001"]

    def test_silent_on_seeded_default_rng(self):
        assert codes(
            "import numpy as np\nr = np.random.default_rng(7)\n"
        ) == []

    def test_silent_on_generator_methods(self):
        # Methods on a generator instance are the sanctioned pattern.
        assert codes(
            """
            from repro.utils.rng import ensure_rng
            def f(seed):
                rng = ensure_rng(seed)
                return rng.random() + rng.integers(0, 5)
            """
        ) == []

    def test_fires_on_perf_counter_outside_timing(self):
        # Latency reads go through repro.utils.timing.perf_timer; a raw
        # perf_counter anywhere else is a lint error.
        assert codes("import time\nt = time.perf_counter()\n") == ["RPL001"]
        assert codes("from time import perf_counter\n") == ["RPL001"]
        assert codes("import time\nt = time.monotonic()\n") == ["RPL001"]
        assert codes(
            "from time import monotonic_ns\n"
        ) == ["RPL001"]

    def test_fires_on_sleep(self):
        # Simulated time never sleeps: retry/backoff delays are event
        # timestamps, not wall-clock waits.
        assert codes("import time\ntime.sleep(1.0)\n") == ["RPL001"]
        assert codes("from time import sleep\n") == ["RPL001"]

    def test_sleep_message_points_at_backoff_delays(self):
        diags = lint_source("import time\ntime.sleep(1.0)\n", "module.py")
        assert len(diags) == 1
        assert "backoff_delays" in diags[0].message

    def test_retry_module_lints_clean(self):
        # The deterministic backoff helper exists precisely so repair
        # scheduling never needs a clock; it must satisfy its own rule.
        source = (REPO_SRC / "repro/utils/retry.py").read_text()
        assert codes(source, "src/repro/utils/retry.py") == []

    def test_timing_module_may_read_clocks(self):
        clock = "import time\nt = time.perf_counter()\n"
        assert codes(clock, "src/repro/utils/timing.py") == []
        assert codes(
            "from time import perf_counter\n", "src/repro/utils/timing.py"
        ) == []
        # ... but the exemption covers clocks only, not RNG primitives.
        assert codes(
            "import random\n", "src/repro/utils/timing.py"
        ) == ["RPL001"]

    def test_rng_module_is_exempt(self):
        bad = "import numpy as np\nr = np.random.default_rng()\n"
        assert codes(bad, "src/repro/utils/rng.py") == []
        assert codes(bad, "src/repro/routing/x.py") == ["RPL001"]


# ----------------------------------------------------------------------
# RPL002: unordered iteration


class TestRPL002UnorderedIteration:
    def test_fires_on_for_over_set_call(self):
        src = "def f(xs):\n    for x in set(xs):\n        pass\n"
        assert codes(src, "repro/routing/m.py") == ["RPL002"]

    def test_fires_on_set_literal(self):
        src = "def f():\n    return [x for x in {1, 2, 3}]\n"
        assert codes(src, "repro/experiments/m.py") == ["RPL002"]

    def test_fires_on_set_named_variable(self):
        src = (
            "def f(xs, ys):\n"
            "    seen = set(xs) | set(ys)\n"
            "    return list(seen)\n"
        )
        assert codes(src, "repro/routing/m.py") == ["RPL002"]

    def test_silent_when_sorted(self):
        src = (
            "def f(xs):\n"
            "    for x in sorted(set(xs)):\n"
            "        pass\n"
            "    return sorted({v for v in xs})\n"
        )
        assert codes(src, "repro/routing/m.py") == []

    def test_silent_on_order_insensitive_consumers(self):
        src = (
            "def f(xs):\n"
            "    s = set(xs)\n"
            "    return len(s) + sum(1 for _ in range(len(s)))\n"
        )
        assert codes(src, "repro/routing/m.py") == []

    def test_silent_when_name_reassigned_to_list(self):
        src = (
            "def f(xs):\n"
            "    items = set(xs)\n"
            "    items = sorted(items)\n"
            "    return [x for x in items]\n"
        )
        assert codes(src, "repro/routing/m.py") == []

    def test_scoped_to_routing_and_experiments(self):
        src = "def f(xs):\n    for x in set(xs):\n        pass\n"
        assert codes(src, "repro/quantum/m.py") == []
        assert codes(src, "standalone.py") == []


# ----------------------------------------------------------------------
# RPL003: environment reads


class TestRPL003Environ:
    def test_fires_on_environ_get(self):
        src = "import os\nv = os.environ.get('REPRO_X')\n"
        assert codes(src, "repro/routing/m.py") == ["RPL003"]

    def test_fires_on_getenv_and_from_import(self):
        assert codes("import os\nv = os.getenv('X')\n") == ["RPL003"]
        assert codes("from os import environ\n") == ["RPL003"]

    def test_allowlisted_files_are_exempt(self):
        src = "import os\nv = os.environ.get('REPRO_X')\n"
        assert codes(src, "src/repro/experiments/config.py") == []
        assert codes(src, "src/repro/utils/rng.py") == []

    def test_compiled_core_is_not_exempt(self):
        # PR 6 routed the core-selection read through the config
        # accessor; a direct read creeping back in must fail.
        src = "import os\nv = os.environ.get('REPRO_ROUTING_CORE')\n"
        assert codes(src, "src/repro/routing/compiled.py") == ["RPL003"]


# ----------------------------------------------------------------------
# RPL004: cache-key completeness


_SPEC_TEMPLATE = """
from dataclasses import dataclass, asdict

@dataclass(frozen=True)
class WorkloadSpec:
    kind: str = "analytic"
    trials: int = 0
{extra_field}
    def to_string(self):
        return f"{{self.kind}}:trials={{self.trials}}"

    def config_dict(self):
        return {{"kind": self.kind, "trials": self.trials}}
"""


class TestRPL004CacheKeys:
    def test_fires_on_unkeyed_field(self):
        src = _SPEC_TEMPLATE.format(extra_field="    knob: int = 0\n")
        assert codes(src) == ["RPL004"]

    def test_silent_when_every_field_is_emitted(self):
        src = _SPEC_TEMPLATE.format(extra_field="")
        assert codes(src) == []

    def test_field_keyed_through_module_param_table(self):
        # The ScenarioSpec shape: to_string maps fields through a
        # module-level (param, field) table.
        src = """
            import dataclasses
            from dataclasses import dataclass

            _PARAM_FIELDS = (("switches", "num_switches"),)

            @dataclass
            class TopoSpec:
                num_switches: int = 100

                def config_dict(self):
                    return dataclasses.asdict(self)
            """
        assert codes(src) == []

    def test_unkeyed_scenario_field_fires(self):
        # The acceptance-criteria scenario: a new knob on a Spec class
        # missing from every emission path and param table.
        src = """
            import dataclasses
            from dataclasses import dataclass

            _PARAM_FIELDS = (("switches", "num_switches"),)

            @dataclass
            class TopoSpec:
                num_switches: int = 100
                new_knob: int = 0

                def config_dict(self):
                    return dataclasses.asdict(self)
            """
        assert codes(src) == ["RPL004"]

    def test_non_spec_dataclasses_are_ignored(self):
        src = """
            from dataclasses import dataclass

            @dataclass
            class Record:
                hidden: int = 0

                def config_dict(self):
                    return {}
            """
        assert codes(src) == []

    def test_spec_without_emission_methods_is_ignored(self):
        src = """
            from dataclasses import dataclass

            @dataclass
            class PlainSpec:
                knob: int = 0
            """
        assert codes(src) == []

    def test_spec_base_subclass_audited_without_own_emissions(self):
        # Inheriting every emission from SpecBase must not silence the
        # audit: the inherited config_dict/to_string still feed cache
        # keys, so an unmentioned field is still an unkeyed knob.
        src = """
            from dataclasses import dataclass
            from repro.specs import SpecBase

            @dataclass(frozen=True)
            class ShinySpec(SpecBase):
                spec_what = "shiny"
                knob: int = 0
            """
        assert codes(src) == ["RPL004"]

    def test_spec_base_subclass_silent_when_fields_mentioned(self):
        src = """
            from dataclasses import dataclass
            import repro.specs as specs

            _PARAMS = ("knob",)

            @dataclass(frozen=True)
            class ShinySpec(specs.SpecBase):
                spec_what = "shiny"
                knob: int = 0
            """
        assert codes(src) == []


# ----------------------------------------------------------------------
# RPL005: registry protocol conventions


class TestRPL005Registry:
    def test_fires_on_router_without_route(self):
        src = """
            from dataclasses import dataclass
            from repro.routing.registry import register_router

            @register_router("x")
            @dataclass
            class XRouter:
                name: str = "X"
            """
        assert codes(src) == ["RPL005"]

    def test_fires_on_router_missing_protocol_params(self):
        src = """
            from dataclasses import dataclass
            from repro.routing.registry import register_router

            @register_router("x")
            @dataclass
            class XRouter:
                name: str = "X"

                def route(self, network, demands):
                    pass
            """
        assert codes(src) == ["RPL005"]

    def test_fires_on_non_dataclass_router(self):
        src = """
            from repro.routing.registry import register_router

            @register_router("x")
            class XRouter:
                name = "X"

                def route(self, network, demands, link_model=None,
                          swap_model=None):
                    pass
            """
        assert codes(src) == ["RPL005"]

    def test_silent_on_conforming_router(self):
        src = """
            from dataclasses import dataclass
            from repro.routing.registry import register_router

            @register_router("x")
            @dataclass
            class XRouter:
                threshold: float = 0.5
                name: str = "X"

                def route(self, network, demands, link_model=None,
                          swap_model=None):
                    pass
            """
        assert codes(src) == []

    def test_fires_on_topology_builder_arity(self):
        src = """
            from repro.network.registry import register_topology

            @register_topology("x")
            def build(config):
                pass
            """
        assert codes(src) == ["RPL005"]

    def test_silent_on_conforming_topology_builder(self):
        src = """
            from repro.network.registry import register_topology

            @register_topology("x", aliases=("y",))
            def build(config, rng):
                pass
            """
        assert codes(src) == []


# ----------------------------------------------------------------------
# RPL006: mutable shared state


class TestRPL006MutableState:
    def test_fires_on_mutable_default_argument(self):
        src = "def f(x, acc=[]):\n    pass\n"
        assert codes(src, "repro/routing/m.py") == ["RPL006"]

    def test_fires_on_module_level_cache(self):
        assert codes("_CACHE = {}\n", "repro/routing/m.py") == ["RPL006"]
        assert codes(
            "_SEEN: dict = dict()\n", "repro/routing/m.py"
        ) == ["RPL006"]

    def test_silent_on_immutable_module_state_and_all(self):
        src = "_MEMO = (None, 'compiled')\n__all__ = ['a', 'b']\n"
        assert codes(src, "repro/routing/m.py") == []

    def test_silent_on_none_default(self):
        src = "def f(x, acc=None):\n    acc = acc or []\n    pass\n"
        assert codes(src, "repro/routing/m.py") == []

    def test_scoped_to_routing(self):
        assert codes("_CACHE = {}\n", "repro/experiments/m.py") == []


# ----------------------------------------------------------------------
# Suppressions


class TestNoqaSuppressions:
    def test_single_code_suppression(self):
        assert codes("import random  # repro: noqa[RPL001]\n") == []

    def test_multi_code_comment(self):
        src = "_CACHE = {}  # repro: noqa[RPL001, RPL006]\n"
        assert codes(src, "repro/routing/m.py") == []

    def test_bare_noqa_suppresses_everything(self):
        assert codes("import random  # repro: noqa\n") == []

    def test_wrong_code_does_not_suppress(self):
        assert codes(
            "import random  # repro: noqa[RPL006]\n"
        ) == ["RPL001"]

    def test_malformed_code_suppresses_nothing(self):
        assert codes(
            "import random  # repro: noqa[bogus]\n"
        ) == ["RPL001"]

    def test_plain_flake8_noqa_is_not_ours(self):
        # The repo grammar is namespaced; a bare flake8 noqa must not
        # silence repro rules.
        assert codes("import random  # noqa\n") == ["RPL001"]

    def test_parse_suppressions_shapes(self):
        parsed = parse_suppressions(
            "a = 1\n"
            "b = 2  # repro: noqa[RPL001,RPL004]\n"
            "c = 3  # repro: noqa\n"
        )
        assert parsed == {
            2: frozenset({"RPL001", "RPL004"}),
            3: ALL_CODES,
        }

    def test_is_suppressed_matches_line_and_code(self):
        diag = Diagnostic("m.py", 2, 1, "RPL001", "x")
        assert is_suppressed(diag, {2: frozenset({"RPL001"})})
        assert not is_suppressed(diag, {1: frozenset({"RPL001"})})
        assert not is_suppressed(diag, {2: frozenset({"RPL002"})})
        assert is_suppressed(diag, {2: ALL_CODES})


# ----------------------------------------------------------------------
# Engine, CLI and report schema


class TestEngineAndCli:
    def test_module_path_normalisation(self):
        assert module_path_for(
            pathlib.Path("src/repro/routing/x.py")
        ) == "repro/routing/x.py"
        assert module_path_for(
            pathlib.Path("/abs/checkout/src/repro/utils/rng.py")
        ) == "repro/utils/rng.py"
        assert module_path_for(pathlib.Path("elsewhere/m.py")) \
            == "elsewhere/m.py"

    def test_syntax_error_reports_rpl000(self):
        assert codes("def broken(:\n") == ["RPL000"]

    def test_select_restricts_rules(self):
        source = "import random\n_C = {}\n"
        diags = lint_source(source, "repro/routing/m.py", select=["RPL006"])
        assert [d.code for d in diags] == ["RPL006"]

    def test_run_lint_over_directory(self, tmp_path):
        pkg = tmp_path / "repro" / "routing"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import random\n")
        (pkg / "good.py").write_text("x = 1\n")
        report = run_lint([tmp_path])
        assert report.files_checked == 2
        assert [d.code for d in report.diagnostics] == ["RPL001"]
        assert not report.ok()

    def test_run_lint_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_lint([tmp_path / "nope"])

    def test_cli_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert lint_main([str(good)]) == 0
        assert lint_main([str(bad)]) == 1
        assert lint_main([str(tmp_path / "absent.py")]) == 2
        out = capsys.readouterr().out
        assert "RPL001" in out

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in out

    def test_json_output_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert lint_main([str(bad), "--format=json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert isinstance(payload["diagnostics"], list)
        entry = payload["diagnostics"][0]
        assert set(entry) == {"path", "line", "column", "code", "message"}
        assert entry["code"] == "RPL001"
        assert entry["line"] == 1
        assert entry["path"].endswith("bad.py")

    def test_json_output_clean_tree(self, tmp_path, capsys):
        (tmp_path / "good.py").write_text("x = 1\n")
        assert lint_main([str(tmp_path), "--format=json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []

    def test_diagnostics_sort_stably(self):
        source = "import random\nimport os\nv = os.environ['X']\n"
        diags = lint_source(source, "repro/routing/m.py")
        assert [d.code for d in diags] == ["RPL001", "RPL003"]
        assert diags == sorted(diags)

    def test_rule_codes_are_unique_and_stable(self):
        assert [r.code for r in ALL_RULES] == [
            "RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006",
        ]


# ----------------------------------------------------------------------
# The shipped tree itself


class TestShippedTree:
    def test_src_tree_is_lint_clean(self):
        report = run_lint([REPO_SRC])
        assert report.files_checked > 50
        assert report.ok(), "\n".join(
            d.render() for d in report.diagnostics
        )

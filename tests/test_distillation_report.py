"""Tests for the distillation extension and the plan report."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import generate_demands
from repro.quantum.distillation import (
    MIN_DISTILLABLE_FIDELITY,
    bbpssw_output_fidelity,
    bbpssw_success_probability,
    channel_rate_fidelity_tradeoff,
    distillation_improves,
    pumping_schedule,
    rounds_to_reach,
)
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.nfusion import AlgNFusion
from repro.routing.report import render_plan_report
from repro.utils.rng import ensure_rng


class TestBBPSSW:
    def test_success_probability_bounds(self):
        for f in (0.5, 0.7, 0.9, 0.99, 1.0):
            p = bbpssw_success_probability(f)
            assert 0.0 < p <= 1.0

    def test_perfect_input_is_fixed_point(self):
        assert bbpssw_output_fidelity(1.0) == pytest.approx(1.0)
        assert bbpssw_success_probability(1.0) == pytest.approx(1.0)

    def test_improvement_region(self):
        assert distillation_improves(0.8)
        assert distillation_improves(0.95)
        assert not distillation_improves(0.5)
        assert not distillation_improves(0.3)
        assert not distillation_improves(1.0)

    def test_output_fidelity_increases_above_half(self):
        for f in (0.6, 0.75, 0.9):
            assert bbpssw_output_fidelity(f) > f

    def test_iterating_converges_to_one(self):
        f = 0.7
        for _ in range(30):
            f = bbpssw_output_fidelity(f)
        assert f > 0.999

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bbpssw_success_probability(1.5)


class TestPumping:
    def test_schedule_shape(self):
        schedule = pumping_schedule(0.8, rounds=3)
        assert [o.rounds for o in schedule] == [0, 1, 2, 3]
        assert [o.pairs_consumed for o in schedule] == [1, 2, 4, 8]
        fidelities = [o.fidelity for o in schedule]
        assert fidelities == sorted(fidelities)
        probabilities = [o.success_probability for o in schedule]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_rounds_to_reach(self):
        assert rounds_to_reach(0.95, 0.9) == 0
        assert rounds_to_reach(0.8, 0.9) >= 1
        assert rounds_to_reach(0.5, 0.9) == -1
        assert rounds_to_reach(0.4, 0.9) == -1

    def test_rounds_to_reach_consistent_with_schedule(self):
        k = rounds_to_reach(0.75, 0.92)
        assert k > 0
        schedule = pumping_schedule(0.75, k)
        assert schedule[k].fidelity >= 0.92
        assert schedule[k - 1].fidelity < 0.92


class TestChannelTradeoff:
    def test_options_tradeoff_shape(self):
        options = channel_rate_fidelity_tradeoff(
            link_success=0.6, width=8, link_fidelity=0.85, max_rounds=3
        )
        assert options[0][0] == 0
        # More rounds: lower delivery probability, higher fidelity.
        probs = [p for _, p, _ in options]
        fids = [f for _, _, f in options]
        assert probs == sorted(probs, reverse=True)
        assert fids == sorted(fids)

    def test_width_budget_respected(self):
        options = channel_rate_fidelity_tradeoff(
            link_success=0.9, width=3, link_fidelity=0.9, max_rounds=4
        )
        # Round 2 needs 4 pairs > width 3: only rounds 0 and 1 available.
        assert [r for r, _, _ in options] == [0, 1]

    def test_zero_width(self):
        assert channel_rate_fidelity_tradeoff(0.5, 0, 0.9) == []


class TestPlanReport:
    def test_report_contents(self):
        rng = ensure_rng(77)
        network = build_network(NetworkConfig(num_switches=25, num_users=4), rng)
        demands = generate_demands(network, 5, rng)
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.9)
        result = AlgNFusion().route(network, demands, link, swap)
        report = render_plan_report(network, demands, result, link, swap)
        assert "ALG-N-FUSION routing plan" in report
        assert "total entanglement rate" in report
        assert "demands routed" in report
        for demand_id in result.demand_rates:
            assert f"demand {demand_id}:" in report

    def test_report_lists_unrouted(self):
        rng = ensure_rng(78)
        network = build_network(NetworkConfig(num_switches=25, num_users=4), rng)
        demands = generate_demands(network, 5, rng)
        # max_hops=1 makes every demand unroutable.
        result = AlgNFusion(max_hops=1).route(
            network, demands, LinkModel(fixed_p=0.5), SwapModel()
        )
        report = render_plan_report(network, demands, result)
        assert "unrouted demands" in report
        assert "busiest switch" in report and "none" in report

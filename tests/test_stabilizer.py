"""Unit tests for the Aaronson-Gottesman stabilizer simulator."""

import numpy as np
import pytest

from repro.exceptions import MeasurementError, QuantumStateError
from repro.quantum.stabilizer import StabilizerTableau


def make(n, seed=0):
    return StabilizerTableau(n, np.random.default_rng(seed))


class TestConstruction:
    def test_initial_state_measures_zero(self):
        t = make(3)
        assert [t.measure_z(i) for i in range(3)] == [0, 0, 0]

    def test_rejects_zero_qubits(self):
        with pytest.raises(QuantumStateError):
            StabilizerTableau(0)

    def test_num_qubits(self):
        assert make(5).num_qubits == 5

    def test_invalid_qubit_index_raises(self):
        t = make(2)
        with pytest.raises(QuantumStateError):
            t.h(2)
        with pytest.raises(QuantumStateError):
            t.measure_z(-1)

    def test_copy_is_independent(self):
        t = make(2)
        t.h(0)
        clone = t.copy()
        clone.cnot(0, 1)
        assert clone.is_bell_pair_up_to_pauli(0, 1)
        # The original was not entangled by the clone's gate.
        assert not t.is_bell_pair_up_to_pauli(0, 1)


class TestSingleQubitGates:
    def test_x_flips_measurement(self):
        t = make(1)
        t.x(0)
        assert t.measure_z(0) == 1

    def test_double_x_is_identity(self):
        t = make(1)
        t.x(0)
        t.x(0)
        assert t.measure_z(0) == 0

    def test_z_preserves_zero_state(self):
        t = make(1)
        t.z(0)
        assert t.measure_z(0) == 0

    def test_y_flips_measurement(self):
        t = make(1)
        t.y(0)
        assert t.measure_z(0) == 1

    def test_hh_is_identity(self):
        t = make(1)
        t.h(0)
        t.h(0)
        assert t.measure_z(0) == 0

    def test_hxh_equals_z(self):
        # HXH = Z: |0> should stay |0>.
        t = make(1)
        t.h(0)
        t.x(0)
        t.h(0)
        assert t.measure_z(0) == 0

    def test_hzh_equals_x(self):
        t = make(1)
        t.h(0)
        t.z(0)
        t.h(0)
        assert t.measure_z(0) == 1

    def test_ssss_is_identity_on_plus(self):
        # S^4 = I; verify on |+> by returning to |0> after H.
        t = make(1)
        t.h(0)
        for _ in range(4):
            t.s(0)
        t.h(0)
        assert t.measure_z(0) == 0

    def test_ss_equals_z(self):
        t = make(1)
        t.h(0)
        t.s(0)
        t.s(0)
        t.h(0)
        assert t.measure_z(0) == 1


class TestTwoQubitGates:
    def test_cnot_on_basis_state(self):
        t = make(2)
        t.x(0)
        t.cnot(0, 1)
        assert t.measure_z(1) == 1

    def test_cnot_rejects_equal_qubits(self):
        t = make(2)
        with pytest.raises(QuantumStateError):
            t.cnot(1, 1)

    def test_bell_pair_correlation(self):
        for seed in range(10):
            t = make(2, seed)
            t.h(0)
            t.cnot(0, 1)
            assert t.measure_z(0) == t.measure_z(1)

    def test_cz_phase_kickback(self):
        # CZ between |+>|1> flips the first qubit's phase: H then CZ then H
        # maps |0>|1> to |1>|1>.
        t = make(2)
        t.x(1)
        t.h(0)
        t.cz(0, 1)
        t.h(0)
        assert t.measure_z(0) == 1

    def test_cz_symmetric(self):
        t1 = make(2)
        t1.x(1)
        t1.h(0)
        t1.cz(0, 1)
        t1.h(0)
        t2 = make(2)
        t2.x(1)
        t2.h(0)
        t2.cz(1, 0)
        t2.h(0)
        assert t1.measure_z(0) == t2.measure_z(0) == 1


class TestMeasurement:
    def test_repeated_measurement_is_stable(self):
        t = make(1, seed=3)
        t.h(0)
        first = t.measure_z(0)
        for _ in range(5):
            assert t.measure_z(0) == first

    def test_forced_outcome_on_random_measurement(self):
        t = make(1)
        t.h(0)
        assert t.measure_z(0, forced_outcome=1) == 1
        assert t.measure_z(0) == 1

    def test_forcing_deterministic_outcome_wrong_raises(self):
        t = make(1)
        with pytest.raises(MeasurementError):
            t.measure_z(0, forced_outcome=1)

    def test_measure_x_of_plus_state_is_deterministic(self):
        t = make(1)
        t.h(0)
        assert t.measure_x(0) == 0

    def test_measure_x_of_minus_state(self):
        t = make(1)
        t.x(0)
        t.h(0)
        assert t.measure_x(0) == 1

    def test_bell_measurement_collapses_partner(self):
        t = make(2, seed=5)
        t.h(0)
        t.cnot(0, 1)
        outcome = t.measure_z(0, forced_outcome=1)
        assert outcome == 1
        assert t.measure_z(1) == 1

    def test_random_outcomes_are_balanced(self):
        rng = np.random.default_rng(42)
        outcomes = []
        for _ in range(200):
            t = StabilizerTableau(1, rng)
            t.h(0)
            outcomes.append(t.measure_z(0))
        assert 60 < sum(outcomes) < 140


class TestStabilizerGroupQueries:
    def test_zero_state_contains_z(self):
        t = make(2)
        assert t.contains_pauli([0, 0], [1, 0])
        assert t.contains_pauli([0, 0], [0, 1])
        assert t.contains_pauli([0, 0], [1, 1])

    def test_zero_state_lacks_x(self):
        t = make(2)
        assert not t.contains_pauli([1, 0], [0, 0])

    def test_sign_sensitivity(self):
        t = make(1)
        t.x(0)  # state |1>, stabilized by -Z
        assert t.contains_pauli([0], [1], up_to_sign=True)
        assert not t.contains_pauli([0], [1], up_to_sign=False)

    def test_bell_pair_query(self):
        t = make(2)
        t.h(0)
        t.cnot(0, 1)
        assert t.is_bell_pair_up_to_pauli(0, 1)

    def test_unentangled_pair_is_not_bell(self):
        t = make(2)
        assert not t.is_bell_pair_up_to_pauli(0, 1)

    def test_ghz_query_needs_two_qubits(self):
        t = make(3)
        with pytest.raises(QuantumStateError):
            t.is_ghz_up_to_pauli([0])

    def test_ghz_query_rejects_duplicates(self):
        t = make(3)
        with pytest.raises(QuantumStateError):
            t.is_ghz_up_to_pauli([0, 0])

    def test_product_z_eigenstate(self):
        t = make(2)
        assert t.is_product_z_eigenstate(0)
        t.h(0)
        assert not t.is_product_z_eigenstate(0)

    def test_ghz_subset_is_not_ghz(self):
        # Two qubits of a GHZ-3 are NOT a Bell pair (tracing the third
        # leaves a classical mixture) — the group query must say no.
        t = make(3)
        t.h(0)
        t.cnot(0, 1)
        t.cnot(0, 2)
        assert t.is_ghz_up_to_pauli([0, 1, 2])
        assert not t.is_ghz_up_to_pauli([0, 1])

"""Tests for the multicommodity-flow LP baseline."""

import pytest

pytest.importorskip("scipy")

from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import Demand, DemandSet, generate_demands
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.baselines.mcf import MCFRouter
from repro.routing.nfusion import AlgNFusion
from repro.utils.rng import ensure_rng

from tests.conftest import make_diamond_network, make_line_network


@pytest.fixture
def models():
    return LinkModel(fixed_p=0.5), SwapModel(q=0.9)


class TestMCFRouter:
    def test_routes_line_demand(self, line_network, models):
        link, swap = models
        demands = DemandSet([Demand(0, 3, 4)])
        result = MCFRouter().route(line_network, demands, link, swap)
        assert result.num_routed == 1
        flow = result.plan.flow_for(0)
        assert flow.paths[0] == (3, 0, 1, 2, 4)
        assert result.total_rate > 0

    def test_uses_both_diamond_arms(self, models):
        link, swap = models
        network = make_diamond_network()
        demands = DemandSet([Demand(0, 0, 1)])
        result = MCFRouter(max_width=4).route(network, demands, link, swap)
        flow = result.plan.flow_for(0)
        assert flow is not None
        # The LP should spread flow across both arms (a flow-like graph)
        # or at least widen one of them beyond width 1.
        widths = list(flow.edge_widths().values())
        assert flow.num_paths == 2 or max(widths) >= 2

    def test_capacity_respected(self, models):
        link, swap = models
        rng = ensure_rng(31)
        network = build_network(NetworkConfig(num_switches=25, num_users=4), rng)
        demands = generate_demands(network, 6, rng)
        result = MCFRouter().route(network, demands, link, swap)
        usage = result.plan.qubits_used()
        for switch in network.switches():
            assert usage.get(switch, 0) <= network.qubit_capacity(switch)

    def test_rates_are_probabilities(self, models):
        link, swap = models
        rng = ensure_rng(32)
        network = build_network(NetworkConfig(num_switches=25, num_users=4), rng)
        demands = generate_demands(network, 5, rng)
        result = MCFRouter().route(network, demands, link, swap)
        for rate in result.demand_rates.values():
            assert 0.0 <= rate <= 1.0

    def test_beats_nothing_route_when_disconnected(self, models):
        link, swap = models
        network = make_line_network()
        network.remove_edge(1, 2)
        demands = DemandSet([Demand(0, 3, 4)])
        result = MCFRouter().route(network, demands, link, swap)
        assert result.num_routed == 0
        assert result.total_rate == 0.0

    def test_alg_n_fusion_outperforms_lp_rounding(self, models):
        """The paper's algorithm should beat the LP surrogate (which
        optimises a linear proxy and loses to rounding)."""
        link, swap = models
        rng = ensure_rng(33)
        network = build_network(NetworkConfig(num_switches=30, num_users=6), rng)
        demands = generate_demands(network, 8, rng)
        mcf = MCFRouter().route(network, demands, link, swap).total_rate
        alg = AlgNFusion().route(network, demands, link, swap).total_rate
        assert alg >= mcf

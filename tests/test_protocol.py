"""Tests for the event-driven protocol simulator."""

import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import generate_demands
from repro.protocol.events import Event, EventQueue
from repro.protocol.hardware import HardwareTimings
from repro.protocol.simulator import ProtocolSimulator
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.nfusion import AlgNFusion
from repro.utils.rng import ensure_rng

from tests.conftest import make_diamond_network, make_line_network


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.schedule_at(2.0, "b")
        queue.schedule_at(1.0, "a")
        queue.schedule_at(3.0, "c")
        kinds = [queue.pop().kind for _ in range(3)]
        assert kinds == ["a", "b", "c"]

    def test_fifo_on_ties(self):
        queue = EventQueue()
        queue.schedule_at(1.0, "first")
        queue.schedule_at(1.0, "second")
        assert queue.pop().kind == "first"
        assert queue.pop().kind == "second"

    def test_rejects_past_scheduling(self):
        queue = EventQueue()
        queue.schedule_at(5.0, "x")
        queue.pop()
        with pytest.raises(SimulationError):
            queue.schedule_at(1.0, "late")

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            Event(-1.0, "x")

    def test_drain_until(self):
        queue = EventQueue()
        for t in (1.0, 2.0, 3.0):
            queue.schedule_at(t, "tick")
        seen = []
        handled = queue.drain(lambda e: seen.append(e.time), until=2.5)
        assert handled == 2
        assert seen == [1.0, 2.0]
        assert len(queue) == 1

    def test_handler_can_schedule(self):
        queue = EventQueue()
        queue.schedule_at(1.0, "spawn")
        seen = []

        def handler(event):
            seen.append(event.kind)
            if event.kind == "spawn":
                queue.schedule_at(2.0, "child")

        queue.drain(handler)
        assert seen == ["spawn", "child"]


class TestHardwareTimings:
    def test_propagation_delay(self):
        t = HardwareTimings(light_speed_km_s=2e5)
        assert t.propagation_delay(200.0) == pytest.approx(1e-3)

    def test_attempt_duration_is_round_trip(self):
        t = HardwareTimings(attempt_overhead_s=1e-6, light_speed_km_s=2e5)
        assert t.attempt_duration(100.0) == pytest.approx(1e-3 + 1e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HardwareTimings(coherence_time_s=0.0)
        with pytest.raises(ConfigurationError):
            HardwareTimings().propagation_delay(-1.0)


def single_attempt_timings(network, flow, coherence=100.0):
    """A slot that admits exactly one attempt per link of *flow*."""
    longest = max(network.edge_length(u, v) for u, v in flow.edges())
    timings = HardwareTimings(attempt_overhead_s=1e-9,
                              coherence_time_s=coherence,
                              slot_duration_s=1.0)
    one_attempt = timings.attempt_duration(longest)
    return HardwareTimings(
        attempt_overhead_s=1e-9,
        coherence_time_s=coherence,
        slot_duration_s=one_attempt * 1.2,
    )


class TestProtocolSimulator:
    def test_single_attempt_matches_analytic_path_rate(self):
        """With one attempt per link and generous memories, the protocol
        establishment probability equals the analytic path rate."""
        network = make_line_network(num_switches=3, spacing=100.0)
        flow = FlowLikeGraph(0, 3, 4)
        flow.add_path([3, 0, 1, 2, 4], width=1)
        link, swap = LinkModel(fixed_p=0.7), SwapModel(q=0.9)
        analytic = flow.entanglement_rate(network, link, swap)
        sim = ProtocolSimulator(
            network, link, swap,
            single_attempt_timings(network, flow), ensure_rng(1),
        )
        stats = sim.run(flow, 4000)
        assert stats.establishment_rate == pytest.approx(analytic, abs=0.03)

    def test_time_multiplexing_beats_single_attempt(self):
        """Longer slots allow link retries, raising establishment above
        the single-attempt analytic rate (the [21] space-time effect)."""
        network = make_line_network(num_switches=3, spacing=100.0)
        flow = FlowLikeGraph(0, 3, 4)
        flow.add_path([3, 0, 1, 2, 4], width=1)
        link, swap = LinkModel(fixed_p=0.3), SwapModel(q=0.95)
        analytic = flow.entanglement_rate(network, link, swap)
        generous = HardwareTimings(coherence_time_s=100.0,
                                   slot_duration_s=1.0)
        sim = ProtocolSimulator(network, link, swap, generous, ensure_rng(2))
        stats = sim.run(flow, 1500)
        assert stats.establishment_rate > analytic + 0.2

    def test_short_memory_causes_expiry_failures(self):
        network = make_line_network(num_switches=3, spacing=1000.0)
        flow = FlowLikeGraph(0, 3, 4)
        flow.add_path([3, 0, 1, 2, 4], width=1)
        link, swap = LinkModel(fixed_p=0.8), SwapModel(q=1.0)
        tight = HardwareTimings(coherence_time_s=1e-6, slot_duration_s=1.0)
        sim = ProtocolSimulator(network, link, swap, tight, ensure_rng(3))
        stats = sim.run(flow, 300)
        assert stats.establishment_rate < 0.2
        assert stats.failures["memory_expiry"] > 0

    def test_dead_links_time_out(self):
        network = make_line_network(num_switches=2, spacing=500.0)
        flow = FlowLikeGraph(0, 2, 3)
        flow.add_path([2, 0, 1, 3], width=1)
        sim = ProtocolSimulator(
            network, LinkModel(fixed_p=0.0), SwapModel(q=1.0),
            HardwareTimings(slot_duration_s=0.01), ensure_rng(4),
        )
        stats = sim.run(flow, 100)
        assert stats.establishment_rate == 0.0
        assert stats.failures["link_timeout"] == 100

    def test_fusion_failures_classified(self):
        network = make_line_network(num_switches=2, spacing=100.0)
        flow = FlowLikeGraph(0, 2, 3)
        flow.add_path([2, 0, 1, 3], width=1)
        sim = ProtocolSimulator(
            network, LinkModel(fixed_p=1.0), SwapModel(q=0.0),
            HardwareTimings(coherence_time_s=10.0, slot_duration_s=1.0),
            ensure_rng(5),
        )
        stats = sim.run(flow, 100)
        assert stats.establishment_rate == 0.0
        assert stats.failures["fusion_failure"] == 100

    def test_branching_flow_uses_surviving_arm(self):
        """If one diamond arm's channel cannot deliver, the other arm can
        still establish the state (fusing at the deadline)."""
        network = make_diamond_network()
        flow = FlowLikeGraph(0, 0, 1)
        flow.add_path([0, 2, 3, 1], width=1)
        flow.add_path([0, 4, 5, 1], width=1)
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.95)
        generous = HardwareTimings(coherence_time_s=100.0,
                                   slot_duration_s=0.2)
        sim = ProtocolSimulator(network, link, swap, generous, ensure_rng(6))
        single = FlowLikeGraph(1, 0, 1)
        single.add_path([0, 2, 3, 1], width=1)
        sim_single = ProtocolSimulator(
            network, link, swap, generous, ensure_rng(6)
        )
        branched = sim.run(flow, 800).establishment_rate
        lone = sim_single.run(single, 800).establishment_rate
        assert branched > lone

    def test_latency_reported_for_successes(self):
        network = make_line_network(num_switches=2, spacing=100.0)
        flow = FlowLikeGraph(0, 2, 3)
        flow.add_path([2, 0, 1, 3], width=1)
        sim = ProtocolSimulator(
            network, LinkModel(fixed_p=1.0), SwapModel(q=1.0),
            HardwareTimings(coherence_time_s=10.0, slot_duration_s=1.0),
            ensure_rng(7),
        )
        stats = sim.run(flow, 10)
        assert stats.establishment_rate == 1.0
        assert stats.mean_latency_s is not None
        assert stats.mean_latency_s > 0.0

    def test_slots_validation(self):
        network = make_line_network()
        flow = FlowLikeGraph(0, 3, 4)
        flow.add_path([3, 0, 1, 2, 4], width=1)
        sim = ProtocolSimulator(network, rng=ensure_rng(1))
        with pytest.raises(SimulationError):
            sim.run(flow, 0)

    def test_integration_with_router(self):
        rng = ensure_rng(55)
        network = build_network(NetworkConfig(num_switches=30, num_users=4), rng)
        demands = generate_demands(network, 4, rng)
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.9)
        result = AlgNFusion().route(network, demands, link, swap)
        sim = ProtocolSimulator(
            network, link, swap,
            HardwareTimings(coherence_time_s=10.0, slot_duration_s=0.5),
            ensure_rng(8),
        )
        for flow in result.plan.flows()[:3]:
            stats = sim.run(flow, 200)
            assert 0.0 <= stats.establishment_rate <= 1.0
            assert stats.slots == 200

"""Tests for the task-based sweep harness: parallel determinism, the
on-disk result cache and duplicate-label detection."""

import dataclasses

import pytest

from repro.experiments.cache import CACHE_FORMAT_VERSION, ResultCache
from repro.experiments.config import ExperimentSetting, default_workers
from repro.experiments.harness import (
    TaskOutcome,
    enumerate_tasks,
    execute_task,
    merge_outcomes,
    parallel_map,
    sample_seeds,
    submit_chunksize,
)
from repro.experiments.runner import (
    run_setting,
    run_settings,
    run_sweep,
    standard_specs,
)
from repro.network.builder import NetworkConfig
from repro.routing.baselines import QCastRouter
from repro.routing.nfusion import AlgNFusion
from repro.utils.rng import ensure_rng, spawn_rng


def tiny_setting(**kwargs):
    defaults = dict(
        network=NetworkConfig(num_switches=20, num_users=4),
        num_states=4,
        num_networks=2,
        fixed_p=0.5,
        seed=77,
    )
    defaults.update(kwargs)
    return ExperimentSetting(**defaults)


class TestTaskEnumeration:
    def test_grid_shape_and_order(self):
        settings = [tiny_setting(), tiny_setting(seed=78)]
        routers = [spec.build() for spec in standard_specs()]
        tasks = enumerate_tasks(settings, [routers, routers])
        assert len(tasks) == 2 * 2 * len(routers)
        # Samples outer, routers inner — the sequential accumulation order.
        keys = [task.key for task in tasks]
        assert keys == sorted(keys)

    def test_seeds_match_sequential_spawn(self):
        """Pre-spawned task seeds equal the spawn_rng children's seeds."""
        setting = tiny_setting()
        seeds = sample_seeds(setting)
        children = spawn_rng(ensure_rng(setting.seed), setting.num_networks)
        rebuilt = [ensure_rng(seed) for seed in seeds]
        for child, clone in zip(children, rebuilt):
            assert child.integers(0, 2**31) == clone.integers(0, 2**31)

    def test_mismatched_router_lists_rejected(self):
        with pytest.raises(ValueError):
            enumerate_tasks([tiny_setting()], [])

    def test_execute_task_matches_direct_route(self):
        setting = tiny_setting(num_networks=1)
        [task] = enumerate_tasks([setting], [[QCastRouter()]])
        outcome = execute_task(task)
        assert outcome.algorithm == "Q-CAST"
        assert outcome.total_rate == run_setting(setting, [QCastRouter()])["Q-CAST"]


class TestParallelDeterminism:
    def test_workers_do_not_change_series(self):
        """Same seed ⇒ bit-identical series for workers=0 and workers=4."""
        settings = [tiny_setting(fixed_p=p) for p in (0.3, 0.6)]
        sequential = run_sweep("t", "p", [0.3, 0.6], settings, workers=0)
        parallel = run_sweep("t", "p", [0.3, 0.6], settings, workers=4)
        assert parallel.series == sequential.series
        assert parallel.x_values == sequential.x_values

    def test_workers_do_not_change_run_setting(self):
        setting = tiny_setting()
        assert run_setting(setting, workers=4) == run_setting(setting, workers=0)

    def test_parallel_map_matches_inline(self):
        items = [1, 2, 3, 4]
        assert parallel_map(_square, items, workers=2) == [1, 4, 9, 16]
        assert parallel_map(_square, items, workers=0) == [1, 4, 9, 16]

    def test_submit_chunksize_is_deterministic_in_grid_size(self):
        """Chunks derive from (grid size, workers) alone — never timing —
        and amortise IPC without starving workers of chunks."""
        assert submit_chunksize(0, 4) == 1
        assert submit_chunksize(1, 4) == 1
        assert submit_chunksize(15, 4) == 1
        assert submit_chunksize(160, 4) == 10
        assert submit_chunksize(160, 0) == 40  # sequential guard
        # Every worker can hold at least one chunk with spares to steal.
        for items, workers in ((160, 4), (1000, 8), (37, 3)):
            chunks = -(-items // submit_chunksize(items, workers))
            assert chunks >= min(items, workers)


def _square(x):
    return x * x


class TestDuplicateLabels:
    def test_run_setting_rejects_duplicate_labels(self):
        """Two routers with one label would silently merge their series."""
        routers = [QCastRouter(), QCastRouter()]
        with pytest.raises(ValueError, match="duplicate algorithm label"):
            run_setting(tiny_setting(num_networks=1), routers)

    def test_distinct_names_still_accepted(self):
        routers = [QCastRouter(), QCastRouter(name="Q-CAST-COPY")]
        rates = run_setting(tiny_setting(num_networks=1), routers)
        assert rates["Q-CAST"] == rates["Q-CAST-COPY"]

    def test_merge_outcomes_detects_cross_router_collision(self):
        outcomes = [
            TaskOutcome(0, 0, 0, "X", 1.0),
            TaskOutcome(0, 0, 1, "X", 2.0),
        ]
        with pytest.raises(ValueError, match="duplicate algorithm label"):
            merge_outcomes(1, outcomes)

    def test_merge_outcomes_means_per_sample(self):
        outcomes = [
            TaskOutcome(0, 0, 0, "X", 1.0),
            TaskOutcome(0, 1, 0, "X", 3.0),
            TaskOutcome(1, 0, 0, "X", 5.0),
        ]
        assert merge_outcomes(2, outcomes) == [{"X": 2.0}, {"X": 5.0}]


class TestResultCache:
    def test_cache_hit_is_identical_to_cold_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        setting = tiny_setting()
        cold = run_setting(setting, cache=cache)
        warm = run_setting(setting, cache=cache)
        assert warm == cold
        assert warm == run_setting(setting)  # and to an uncached run

    def test_cache_files_appear_per_router(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_setting(tiny_setting(num_networks=1), cache=cache)
        assert len(list(tmp_path.glob("*.json"))) == len(standard_specs())

    def test_key_changes_with_setting_and_router(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = tiny_setting()
        router = AlgNFusion()
        assert cache.key_for(base, router) == cache.key_for(base, AlgNFusion())
        assert cache.key_for(base, router) != cache.key_for(
            base.with_updates(swap_q=0.5), router
        )
        assert cache.key_for(base, router) != cache.key_for(
            base, AlgNFusion(h=5)
        )
        assert cache.key_for(base, router) != cache.key_for(base, QCastRouter())

    def test_corrupt_entry_is_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        setting = tiny_setting(num_networks=1)
        cold = run_setting(setting, cache=cache)
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        assert run_setting(setting, cache=cache) == cold

    def test_wrong_format_version_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for(tiny_setting(), AlgNFusion())
        cache.put(key, "X", [1.0])
        entry_path = tmp_path / f"{key}.json"
        text = entry_path.read_text()
        entry_path.write_text(
            text.replace(
                f'"cache_format_version": {CACHE_FORMAT_VERSION}',
                '"cache_format_version": 999',
            )
        )
        assert cache.get(key) is None

    def test_sample_count_mismatch_recomputes(self, tmp_path):
        """A stale entry with too few samples must not be trusted."""
        cache = ResultCache(tmp_path)
        short = tiny_setting(num_networks=1)
        long = dataclasses.replace(short, num_networks=2)
        run_setting(short, [QCastRouter()], cache=cache)
        # Different num_networks ⇒ different key anyway; simulate a stale
        # same-key entry by writing a wrong-length series directly.
        key = cache.key_for(long, QCastRouter())
        cache.put(key, "Q-CAST", [1.0])
        rates = run_setting(long, [QCastRouter()], cache=cache)
        assert rates == run_setting(long, [QCastRouter()])


class TestWorkersEnvDefault:
    def test_default_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 0
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert default_workers() == 4
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        assert default_workers() == 0
        monkeypatch.setenv("REPRO_WORKERS", "nope")
        with pytest.raises(ValueError):
            default_workers()

"""Parity suite for the compiled routing core.

The compiled core (CSR snapshots + array kernels, the default) must
match the reference object-graph implementations **bit-for-bit** —
same paths, same floats, same plans — across topology families, seeds,
banned node/edge sets, widths, partially consumed ledgers and
``extra_widths`` probes.  Any drift here is a correctness bug, not a
tolerance issue, so every comparison is exact equality.
"""

from __future__ import annotations

import contextlib
import os

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.scenarios import parse_scenario
from repro.network import CompiledNetwork, compile_network
from repro.network.builder import build_network
from repro.network.demands import Demand, generate_demands
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.alg1_largest_rate import largest_entanglement_rate_path
from repro.routing.alg2_path_selection import default_max_width, select_paths
from repro.routing.allocation import QubitLedger
from repro.routing.compiled import (
    FUSED_WIDTH_MIN_DEFAULT,
    FUSED_WIDTH_MIN_ENV,
    ROUTING_CORE_ENV,
    WidthSearchBatch,
    active_routing_core,
    fused_width_min,
    search_widths,
    snapshot_for,
)
from repro.exceptions import RoutingError
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.metrics import ChannelRateCache
from repro.routing.registry import make_router, router_keys
from repro.utils.rng import ensure_rng

LINK = LinkModel(fixed_p=0.4)
SWAP = SwapModel(q=0.9)

#: Scenario-registry workloads the parity sweeps run over — one spec
#: per structurally distinct family (geometric, lattice, power-law,
#: uniform-random), shrunk to keep the suite fast.
SCENARIOS = (
    "waxman:switches=30,users=6,states=6",
    "grid:switches=25,users=6,states=6",
    "aiello:switches=30,users=6,states=6",
    "erdos-renyi:switches=30,users=6,states=6",
)

SEEDS = (7, 20230601)


@contextlib.contextmanager
def routing_core(name):
    """Run a block under ``REPRO_ROUTING_CORE=name``."""
    previous = os.environ.get(ROUTING_CORE_ENV)
    os.environ[ROUTING_CORE_ENV] = name
    try:
        yield
    finally:
        if previous is None:
            del os.environ[ROUTING_CORE_ENV]
        else:
            os.environ[ROUTING_CORE_ENV] = previous


def _instance(scenario: str, seed: int):
    spec = parse_scenario(scenario)
    rng = ensure_rng(seed)
    network = build_network(spec.network_config(), rng)
    demands = generate_demands(network, spec.num_states, rng)
    return network, demands


def _plan_shape(result):
    """The exact admitted structure: per-demand paths and edge widths."""
    return {
        flow.demand_id: (tuple(flow.paths), tuple(sorted(
            flow.edge_widths().items()
        )))
        for flow in result.plan.flows()
    }


# ----------------------------------------------------------------------
# Core selection


def test_default_core_is_compiled(monkeypatch):
    monkeypatch.delenv(ROUTING_CORE_ENV, raising=False)
    assert active_routing_core() == "compiled"


def test_invalid_core_rejected(monkeypatch):
    monkeypatch.setenv(ROUTING_CORE_ENV, "vectorised")
    with pytest.raises(ConfigurationError, match="REPRO_ROUTING_CORE"):
        active_routing_core()


def test_core_env_read_per_call(monkeypatch):
    monkeypatch.setenv(ROUTING_CORE_ENV, "reference")
    assert active_routing_core() == "reference"
    monkeypatch.setenv(ROUTING_CORE_ENV, "compiled")
    assert active_routing_core() == "compiled"


# ----------------------------------------------------------------------
# Snapshot layer


def test_snapshot_matches_reference_rates():
    network, _ = _instance(SCENARIOS[0], SEEDS[0])
    link = LinkModel()  # length-based probabilities, the realistic case
    snapshot = compile_network(network, link)
    cache = ChannelRateCache(network, link)
    for width in (1, 2, 5):
        column = snapshot.width_rates(width)
        for (u, v), eid in snapshot.edge_index.items():
            assert column[eid] == cache.rate(u, v, width)
    assert snapshot.num_nodes == network.num_nodes
    assert snapshot.num_edges == network.num_edges


def test_snapshot_shared_through_rate_cache():
    network, _ = _instance(SCENARIOS[0], SEEDS[0])
    cache = ChannelRateCache(network, LINK)
    first = snapshot_for(network, LINK, cache)
    assert isinstance(first, CompiledNetwork)
    assert snapshot_for(network, LINK, cache) is first
    # A cache bound to a different link model must not leak its snapshot.
    assert snapshot_for(network, LinkModel(fixed_p=0.9), cache) is not first


# ----------------------------------------------------------------------
# Algorithm 1 parity


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("seed", SEEDS)
def test_alg1_parity_random_banned_sets(scenario, seed):
    network, demands = _instance(scenario, seed)
    rng = ensure_rng(seed + 1)
    switches = network.switches()
    edges = network.edge_keys()
    ledger = QubitLedger(network)
    # Consume some qubits so the feasibility checks actually bite.
    for node in switches[::3]:
        ledger.reserve(node, min(2, int(ledger.remaining(node))))
    for trial in range(12):
        demand = demands[trial % len(demands)]
        width = 1 + trial % 3
        banned_nodes = frozenset(
            int(s) for s in rng.choice(switches, size=3, replace=False)
        )
        picked = rng.choice(len(edges), size=4, replace=False)
        banned_edges = frozenset(edges[int(i)] for i in picked)
        results = {}
        for core in ("reference", "compiled"):
            with routing_core(core):
                results[core] = largest_entanglement_rate_path(
                    network, LINK, SWAP, demand.source, demand.destination,
                    width, ledger, banned_nodes=banned_nodes,
                    banned_edges=banned_edges,
                )
        assert results["reference"] == results["compiled"]


def test_alg1_parity_infeasible_cases(diamond_network):
    ledger = QubitLedger(diamond_network)
    for node in (2, 3, 4, 5):
        ledger.reserve(node, 10)  # drain every switch
    for core in ("reference", "compiled"):
        with routing_core(core):
            assert largest_entanglement_rate_path(
                diamond_network, LINK, SWAP, 0, 1, 1, ledger
            ) is None
            # Banned endpoint short-circuits identically.
            assert largest_entanglement_rate_path(
                diamond_network, LINK, SWAP, 0, 1, 1,
                banned_nodes=frozenset({0}),
            ) is None


# ----------------------------------------------------------------------
# Algorithm 2 parity


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("seed", SEEDS)
def test_alg2_parity(scenario, seed):
    network, demands = _instance(scenario, seed)
    ledger = QubitLedger(network)
    for node in network.switches()[::4]:
        ledger.reserve(node, min(3, int(ledger.remaining(node))))
    max_width = min(3, default_max_width(network))
    for demand in demands[:3]:
        per_core = {}
        for core in ("reference", "compiled"):
            with routing_core(core):
                per_core[core] = select_paths(
                    network, LINK, SWAP, demand, h=3, max_width=max_width,
                    ledger=ledger,
                )
        # PathCandidate is a frozen dataclass: equality covers nodes,
        # width and the exact float rate of every selected path.
        assert per_core["reference"] == per_core["compiled"]


def test_alg2_parity_max_hops(line_network):
    demand = Demand(0, *line_network.users())
    per_core = {}
    for core in ("reference", "compiled"):
        with routing_core(core):
            per_core[core] = select_paths(
                line_network, LINK, SWAP, demand, h=2, max_width=2,
                max_hops=4,
            )
    assert per_core["reference"] == per_core["compiled"]


# ----------------------------------------------------------------------
# Equation 1 parity


@pytest.mark.parametrize("scenario", SCENARIOS[:2])
def test_equation1_parity_with_extra_width_probes(scenario):
    network, demands = _instance(scenario, SEEDS[0])
    with routing_core("compiled"):
        result = make_router("alg-n-fusion").route(network, demands, LINK, SWAP)
    cache = ChannelRateCache(network, LINK)
    arity_swap = SwapModel(q=0.9, per_qubit=True)  # arity-sensitive
    for flow in result.plan.flows():
        probes = [None] + [{edge: 1} for edge in flow.edges()]
        if len(flow.edges()) >= 2:
            probes.append({edge: 2 for edge in flow.edges()[:2]})
        for extra in probes:
            for swap_model in (SWAP, arity_swap):
                rates = {}
                for core in ("reference", "compiled"):
                    with routing_core(core):
                        rates[core] = flow.entanglement_rate(
                            network, LINK, swap_model,
                            extra_widths=extra, rate_cache=cache,
                        )
                assert rates["reference"] == rates["compiled"]
                # The rate cache is an optimisation, never a semantic.
                with routing_core("compiled"):
                    assert flow.entanglement_rate(
                        network, LINK, swap_model, extra_widths=extra
                    ) == rates["compiled"]


def test_fusion_arity_cache_tracks_mutations():
    flow = FlowLikeGraph(0, 0, 1)
    flow.add_path((0, 2, 3, 1), width=2)

    def brute_force(node):
        return sum(
            width
            for (a, b), width in flow.edge_widths().items()
            if node in (a, b)
        )

    assert all(flow.fusion_arity(n) == brute_force(n) for n in flow.nodes())
    flow.add_path((0, 4, 5, 1), width=1)
    assert all(flow.fusion_arity(n) == brute_force(n) for n in flow.nodes())
    flow.widen_edge(2, 3)
    assert flow.fusion_arity(2) == brute_force(2) == 5
    # Re-adding an existing path is a width upgrade and must invalidate.
    flow.add_path((0, 4, 5, 1), width=3)
    assert flow.fusion_arity(4) == brute_force(4) == 6
    assert flow.fusion_arity(99) == 0


# ----------------------------------------------------------------------
# Whole-router parity


# ----------------------------------------------------------------------
# remove_path / capacity release (the serving loop's departure path)


def _incident_width(flow, node):
    return sum(
        width
        for (a, b), width in flow.edge_widths().items()
        if node in (a, b)
    )


def test_remove_path_released_width_accounting():
    flow = FlowLikeGraph(0, 0, 1)
    flow.add_path((0, 2, 3, 1), width=2)
    flow.add_path((0, 4, 3, 1), width=1)
    flow.widen_edge(2, 3)  # an Alg-4 extra rides on the removed path
    before = flow.edge_widths()
    released = flow.remove_path((0, 2, 3, 1))
    after = flow.edge_widths()
    # Conservation: every edge's width is split between released and kept.
    for key, width in before.items():
        assert released.get(key, 0) + after.get(key, 0) == width
    # Edges only the removed path covered go entirely, extras included.
    assert released[(0, 2)] == 2
    assert released[(2, 3)] == 3
    assert (0, 2) not in after and (2, 3) not in after
    # The shared edge drops to the surviving path's width.
    assert released[(1, 3)] == 1 and after[(1, 3)] == 1
    assert flow.paths == [(0, 4, 3, 1)]
    # The arity cache tracks the removal exactly.
    for node in (0, 1, 2, 3, 4):
        assert flow.fusion_arity(node) == _incident_width(flow, node)
    from repro.exceptions import RoutingError

    with pytest.raises(RoutingError):
        flow.remove_path((0, 2, 3, 1))


def test_remove_path_matches_rebuilt_flow():
    # Removing a path must leave exactly the flow that would have been
    # built without it (no widen extras involved).
    flow = FlowLikeGraph(3, 0, 1)
    flow.add_path((0, 2, 1), width=3)
    flow.add_path((0, 4, 5, 1), width=2)
    flow.add_path((0, 2, 5, 1), width=1)
    flow.remove_path((0, 4, 5, 1))
    rebuilt = FlowLikeGraph(3, 0, 1)
    rebuilt.add_path((0, 2, 1), width=3)
    rebuilt.add_path((0, 2, 5, 1), width=1)
    assert flow.edge_widths() == rebuilt.edge_widths()
    assert flow.paths == rebuilt.paths


@pytest.mark.parametrize("scenario", SCENARIOS[:2])
def test_remove_path_rate_parity_across_cores(scenario):
    network, demands = _instance(scenario, SEEDS[0])
    with routing_core("compiled"):
        result = make_router("alg-n-fusion").route(network, demands, LINK, SWAP)
    flows = [f for f in result.plan.flows() if f.num_paths >= 2]
    assert flows, "parity sweep needs at least one multi-path flow"
    for flow in flows[:3]:
        probe = flow.copy()
        # Interleave departure-style removal with a widen in between.
        probe.remove_path(probe.paths[0])
        first_edge = probe.edges()[0]
        probe.widen_edge(*first_edge)
        rates = {}
        for core in ("reference", "compiled"):
            with routing_core(core):
                rates[core] = probe.entanglement_rate(network, LINK, SWAP)
        assert rates["reference"] == rates["compiled"]
        # Draining every path leaves a zero-rate, zero-edge flow.
        for path in probe.paths:
            probe.remove_path(path)
        assert probe.edge_widths() == {}
        assert probe.entanglement_rate(network, LINK, SWAP) == 0.0


def test_relay_feasibility_journal_parity():
    network, _ = _instance(SCENARIOS[0], SEEDS[0])
    cache = ChannelRateCache(network, LINK)
    snapshot = snapshot_for(network, LINK, cache)
    ledger = QubitLedger(network)
    switches = network.switches()

    def expected(width):
        return [
            (not user) and ledger.has_at_least(nid, 2 * width)
            for user, nid in zip(snapshot.is_user, snapshot.node_ids)
        ]

    for width in (1, 2):
        assert list(snapshot.relay_feasible(ledger, width)) == expected(width)
    # Incremental reserve/release sequences patch flags via the journal.
    rng = ensure_rng(SEEDS[0] + 1)
    for trial in range(40):
        node = switches[int(rng.integers(len(switches)))]
        free = int(ledger.remaining(node))
        if trial % 3 == 2 and free < 10:
            ledger.release(node, 1)
        elif free:
            ledger.reserve(node, min(2, free))
        for width in (1, 2):
            assert list(snapshot.relay_feasible(ledger, width)) == expected(width)
    # restore() bumps the epoch: derived flags must follow wholesale.
    baseline = ledger.snapshot()
    ledger.reserve(switches[0], int(ledger.remaining(switches[0])))
    assert list(snapshot.relay_feasible(ledger, 1)) == expected(1)
    ledger.restore(baseline)
    assert list(snapshot.relay_feasible(ledger, 1)) == expected(1)
    # Journal compaction (epoch bump mid-stream) keeps patching exact.
    node = switches[0]
    for _ in range(1200):
        ledger.reserve(node, 1)
        ledger.release(node, 1)
    assert list(snapshot.relay_feasible(ledger, 1)) == expected(1)
    assert list(snapshot.relay_feasible(ledger, 2)) == expected(2)


# ----------------------------------------------------------------------
# Batched width search (the kernel-facing API)


@pytest.mark.parametrize("scenario", SCENARIOS[:2])
@pytest.mark.parametrize("seed", SEEDS)
def test_batched_search_matches_reference_per_width(scenario, seed):
    """``search_widths`` answers every width exactly as the reference
    core's per-width Algorithm 1 — including banned sets and a partially
    consumed ledger."""
    network, demands = _instance(scenario, seed)
    rng = ensure_rng(seed + 2)
    switches = network.switches()
    edges = network.edge_keys()
    ledger = QubitLedger(network)
    for node in switches[::3]:
        ledger.reserve(node, min(2, int(ledger.remaining(node))))
    snapshot = snapshot_for(network, LINK, None)
    widths = (1, 2, 3)
    for trial in range(8):
        demand = demands[trial % len(demands)]
        banned_nodes = frozenset(
            int(s) for s in rng.choice(switches, size=2, replace=False)
        )
        picked = rng.choice(len(edges), size=3, replace=False)
        banned_edges = frozenset(edges[int(i)] for i in picked)
        batched = search_widths(
            snapshot, SWAP, demand, widths, ledger=ledger,
            banned_nodes=banned_nodes, banned_edges=banned_edges,
        )
        assert set(batched) == set(widths)
        with routing_core("reference"):
            for width in widths:
                expected = largest_entanglement_rate_path(
                    network, LINK, SWAP, demand.source, demand.destination,
                    width, ledger, banned_nodes=banned_nodes,
                    banned_edges=banned_edges,
                )
                assert batched[width] == expected


def test_batched_search_drained_ledger(diamond_network):
    ledger = QubitLedger(diamond_network)
    for node in (2, 3, 4, 5):
        ledger.reserve(node, 10)
    snapshot = snapshot_for(diamond_network, LINK, None)
    batched = search_widths(
        snapshot, SWAP, Demand(0, 0, 1), (1, 2), ledger=ledger
    )
    assert batched == {1: None, 2: None}
    # Banned endpoints short-circuit per width, like the reference core.
    fresh = QubitLedger(diamond_network)
    assert search_widths(
        snapshot, SWAP, Demand(0, 0, 1), (1,), ledger=fresh,
        banned_nodes=frozenset({1}),
    ) == {1: None}


def test_batch_matches_its_own_single_width_searches():
    network, demands = _instance(SCENARIOS[1], SEEDS[0])
    ledger = QubitLedger(network)
    snapshot = snapshot_for(network, LINK, None)
    demand = demands[0]
    batch = WidthSearchBatch(
        snapshot, SWAP, demand.source, demand.destination, (1, 2, 3), ledger
    )
    swept = batch.search_widths()
    for width in (1, 2, 3):
        assert swept[width] == batch.search(width)


def test_batch_rejects_invalid_construction(diamond_network):
    snapshot = snapshot_for(diamond_network, LINK, None)
    with pytest.raises(RoutingError, match="must differ"):
        WidthSearchBatch(snapshot, SWAP, 0, 0, (1,))
    with pytest.raises(RoutingError, match="must exist"):
        WidthSearchBatch(snapshot, SWAP, 0, 99, (1,))
    with pytest.raises(RoutingError, match="width"):
        WidthSearchBatch(snapshot, SWAP, 0, 1, (1, 0))


# ----------------------------------------------------------------------
# Fused multi-width frontier (one Dijkstra pass for a whole batch)


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("seed", SEEDS)
def test_fused_frontier_matches_per_width_standalone(
    scenario, seed, monkeypatch
):
    """The fused multi-width pass answers exactly like per-width scalar
    searches — across topologies, seeds, banned node/edge sets and a
    partially consumed ledger.  Fresh snapshots on each side keep the
    search memo from masking a kernel divergence."""
    network, demands = _instance(scenario, seed)
    rng = ensure_rng(seed + 5)
    switches = network.switches()
    edges = network.edge_keys()
    ledger = QubitLedger(network)
    for node in switches[::4]:
        ledger.reserve(node, min(2, int(ledger.remaining(node))))
    fused_snapshot = compile_network(network, LINK)
    scalar_snapshot = compile_network(network, LINK)
    widths = (1, 2, 3, 5)
    for trial in range(6):
        demand = demands[trial % len(demands)]
        banned_nodes = frozenset(
            int(s) for s in rng.choice(switches, size=2, replace=False)
        )
        picked = rng.choice(len(edges), size=3, replace=False)
        banned_edges = frozenset(edges[int(i)] for i in picked)
        monkeypatch.delenv(FUSED_WIDTH_MIN_ENV, raising=False)
        fused = WidthSearchBatch(
            fused_snapshot, SWAP, demand.source, demand.destination,
            widths, ledger,
        ).search_widths(
            banned_nodes=banned_nodes, banned_edges=banned_edges
        )
        # Force the scalar per-width fallback: the parity oracle.
        monkeypatch.setenv(FUSED_WIDTH_MIN_ENV, "999")
        scalar = WidthSearchBatch(
            scalar_snapshot, SWAP, demand.source, demand.destination,
            widths, ledger,
        ).search_widths(
            banned_nodes=banned_nodes, banned_edges=banned_edges
        )
        assert fused == scalar


def test_fused_frontier_engages_at_the_width_threshold(
    diamond_network, monkeypatch
):
    """Batches below ``fused_width_min()`` never enter the fused kernel
    (a width-count-1 batch stays on the scalar path); batches at or
    above it do."""
    monkeypatch.delenv(FUSED_WIDTH_MIN_ENV, raising=False)
    calls = []
    original = CompiledNetwork._kernel_multi
    monkeypatch.setattr(
        CompiledNetwork,
        "_kernel_multi",
        lambda self, *args: calls.append(1) or original(self, *args),
    )
    snapshot = compile_network(diamond_network, LINK)
    single = WidthSearchBatch(snapshot, SWAP, 0, 1, (2,), None)
    assert single.search_widths() == {2: single.search(2)}
    assert not calls  # one width: scalar fallback, no fused pass
    pair = WidthSearchBatch(
        compile_network(diamond_network, LINK), SWAP, 0, 1, (1, 2), None
    )
    swept = pair.search_widths()
    assert calls  # two widths >= the default threshold: fused pass
    assert swept == {1: pair.search(1), 2: pair.search(2)}


def test_fused_frontier_drained_relays(diamond_network, monkeypatch):
    """Feasible endpoints but drained relay switches: the fused pass
    itself (not the endpoint short-circuit) must report no path, like
    the scalar searches."""
    monkeypatch.delenv(FUSED_WIDTH_MIN_ENV, raising=False)
    ledger = QubitLedger(diamond_network)
    for node in (2, 3, 4, 5):
        ledger.reserve(node, int(ledger.remaining(node)))
    snapshot = compile_network(diamond_network, LINK)
    batch = WidthSearchBatch(
        snapshot, SWAP, 0, 1, (1, 2, 3), ledger
    )
    assert batch.search_widths() == {1: None, 2: None, 3: None}


def test_fused_width_min_knob(monkeypatch):
    monkeypatch.delenv(FUSED_WIDTH_MIN_ENV, raising=False)
    assert fused_width_min() == FUSED_WIDTH_MIN_DEFAULT
    monkeypatch.setenv(FUSED_WIDTH_MIN_ENV, "5")
    assert fused_width_min() == 5
    for bad in ("abc", "1", "0", "-3", "2.5"):
        monkeypatch.setenv(FUSED_WIDTH_MIN_ENV, bad)
        with pytest.raises(ConfigurationError, match=FUSED_WIDTH_MIN_ENV):
            fused_width_min()


# ----------------------------------------------------------------------
# Persistent snapshots (topology_version keyed)


def test_persistent_snapshot_survives_calls_and_tracks_mutations():
    network, demands = _instance(SCENARIOS[0], SEEDS[0])
    first = snapshot_for(network, LINK, None)
    # Reused across calls and across rate caches: the snapshot lives on
    # the network keyed by (link model, topology_version).
    assert snapshot_for(network, LINK, None) is first
    assert snapshot_for(network, LINK, ChannelRateCache(network, LINK)) is first
    # A different link model gets its own snapshot.
    assert snapshot_for(network, LinkModel(fixed_p=0.9), None) is not first

    with routing_core("compiled"):
        router = make_router("alg-n-fusion")
        before = router.route(network, demands, LINK, SWAP)
        again = router.route(network, demands, LINK, SWAP)
    # Warm calls (memoised snapshot + search memo) stay bit-identical.
    assert again.total_rate == before.total_rate
    assert again.demand_rates == before.demand_rates
    assert _plan_shape(again) == _plan_shape(before)

    # A structural mutation bumps topology_version and invalidates.
    u, v = network.edge_keys()[0]
    length = network.edge(u, v).length
    version = network.topology_version
    network.remove_edge(u, v)
    assert network.topology_version == version + 1
    assert snapshot_for(network, LINK, None) is not first
    results = {}
    for core in ("reference", "compiled"):
        with routing_core(core):
            results[core] = make_router("alg-n-fusion").route(
                network, demands, LINK, SWAP
            )
    assert results["reference"].demand_rates == results["compiled"].demand_rates
    assert _plan_shape(results["reference"]) == _plan_shape(results["compiled"])

    # Restoring the edge restores the original answers bit-for-bit
    # (through a fresh snapshot — versions never roll back).
    network.add_edge(u, v, length)
    with routing_core("compiled"):
        restored = make_router("alg-n-fusion").route(network, demands, LINK, SWAP)
    assert restored.total_rate == before.total_rate
    assert restored.demand_rates == before.demand_rates
    assert _plan_shape(restored) == _plan_shape(before)


# ----------------------------------------------------------------------
# Incremental cycle check (position-map fast path + DFS fallback)


def _directed_edges(paths):
    return {(a, b) for nodes in paths for a, b in zip(nodes, nodes[1:])}


def _oracle_has_cycle(edges):
    """Exact three-colour DFS over a set of directed edges."""
    children = {}
    for a, b in edges:
        children.setdefault(a, set()).add(b)
    state = {}
    for root in list(children):
        if state.get(root):
            continue
        stack = [(root, iter(sorted(children.get(root, ()))))]
        state[root] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for child in it:
                mark = state.get(child)
                if mark == 1:
                    return True
                if mark is None:
                    state[child] = 1
                    stack.append((child, iter(sorted(children.get(child, ())))))
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                stack.pop()
    return False


def test_cycle_check_randomised_against_dfs_oracle():
    """Mixed add/remove/widen/upgrade sequences: the incremental check
    accepts exactly the merges a from-scratch DFS accepts."""
    rng = ensure_rng(1234)
    flow = FlowLikeGraph(0, 0, 1)
    intermediates = list(range(2, 10))
    accepted = 0
    rejected = 0
    for trial in range(300):
        action = int(rng.integers(10))
        if action < 6 or not flow.paths:
            size = int(rng.integers(1, 4))
            middle = [
                int(n)
                for n in rng.choice(intermediates, size=size, replace=False)
            ]
            candidate = tuple([0] + middle + [1])
            should_cycle = _oracle_has_cycle(
                _directed_edges(flow.paths) | _directed_edges([candidate])
            )
            if should_cycle:
                with pytest.raises(RoutingError, match="directed cycle"):
                    flow.add_path(candidate, width=1 + trial % 3)
                rejected += 1
                # A rejected merge must leave the graph untouched.
                assert candidate not in flow.paths
            else:
                flow.add_path(candidate, width=1 + trial % 3)
                accepted += 1
        elif action < 8:
            victim = flow.paths[int(rng.integers(len(flow.paths)))]
            flow.remove_path(victim)
        elif flow.edge_widths():
            keys = sorted(flow.edge_widths())
            edge = keys[int(rng.integers(len(keys)))]
            flow.widen_edge(*edge)
        # Invariants after every operation: the live graph is acyclic
        # and the arity memo matches a full rescan.
        assert not _oracle_has_cycle(_directed_edges(flow.paths))
        for node in flow.nodes():
            assert flow.fusion_arity(node) == _incident_width(flow, node)
    assert accepted >= 30 and rejected >= 30


def test_cycle_check_survives_position_gap_exhaustion():
    """Thousands of between-anchor insertions exhaust the integer gaps
    of the position map; the lazy renumber must keep both acceptance and
    rejection exact."""
    flow = FlowLikeGraph(0, 0, 1)
    flow.add_path((0, 2, 1), width=1)
    # Repeatedly splice a new node between the source and node 2: each
    # insertion bisects the same positional gap.
    chain = [0, 2]
    for fresh in range(100, 140):
        chain.insert(1, fresh)
        flow.add_path(tuple(chain + [1]), width=1)
        assert not _oracle_has_cycle(_directed_edges(flow.paths))
    # After any renumbering, ordering semantics must be intact: a
    # backwards edge is still rejected, a forwards one accepted.
    flow.add_path((0, 2, 3, 1), width=1)
    with pytest.raises(RoutingError, match="directed cycle"):
        flow.add_path((0, 3, 2, 1), width=1)
    flow.add_path((0, 100, 3, 1), width=2)
    assert not _oracle_has_cycle(_directed_edges(flow.paths))


# ----------------------------------------------------------------------
# Whole-router parity


@pytest.mark.parametrize("key", sorted(router_keys()))
def test_router_parity_across_cores(key):
    network, demands = _instance(SCENARIOS[0], SEEDS[1])
    results = {}
    for core in ("reference", "compiled"):
        with routing_core(core):
            results[core] = make_router(key).route(
                network, demands, LINK, SWAP
            )
    reference, compiled = results["reference"], results["compiled"]
    assert reference.total_rate == compiled.total_rate
    assert reference.demand_rates == compiled.demand_rates
    assert _plan_shape(reference) == _plan_shape(compiled)
    assert reference.remaining_qubits == compiled.remaining_qubits

"""Parity suite for the compiled routing core.

The compiled core (CSR snapshots + array kernels, the default) must
match the reference object-graph implementations **bit-for-bit** —
same paths, same floats, same plans — across topology families, seeds,
banned node/edge sets, widths, partially consumed ledgers and
``extra_widths`` probes.  Any drift here is a correctness bug, not a
tolerance issue, so every comparison is exact equality.
"""

from __future__ import annotations

import contextlib
import os

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.scenarios import parse_scenario
from repro.network import CompiledNetwork, compile_network
from repro.network.builder import build_network
from repro.network.demands import Demand, generate_demands
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.alg1_largest_rate import largest_entanglement_rate_path
from repro.routing.alg2_path_selection import default_max_width, select_paths
from repro.routing.allocation import QubitLedger
from repro.routing.compiled import (
    ROUTING_CORE_ENV,
    active_routing_core,
    snapshot_for,
)
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.metrics import ChannelRateCache
from repro.routing.registry import make_router, router_keys
from repro.utils.rng import ensure_rng

LINK = LinkModel(fixed_p=0.4)
SWAP = SwapModel(q=0.9)

#: Scenario-registry workloads the parity sweeps run over — one spec
#: per structurally distinct family (geometric, lattice, power-law,
#: uniform-random), shrunk to keep the suite fast.
SCENARIOS = (
    "waxman:switches=30,users=6,states=6",
    "grid:switches=25,users=6,states=6",
    "aiello:switches=30,users=6,states=6",
    "erdos-renyi:switches=30,users=6,states=6",
)

SEEDS = (7, 20230601)


@contextlib.contextmanager
def routing_core(name):
    """Run a block under ``REPRO_ROUTING_CORE=name``."""
    previous = os.environ.get(ROUTING_CORE_ENV)
    os.environ[ROUTING_CORE_ENV] = name
    try:
        yield
    finally:
        if previous is None:
            del os.environ[ROUTING_CORE_ENV]
        else:
            os.environ[ROUTING_CORE_ENV] = previous


def _instance(scenario: str, seed: int):
    spec = parse_scenario(scenario)
    rng = ensure_rng(seed)
    network = build_network(spec.network_config(), rng)
    demands = generate_demands(network, spec.num_states, rng)
    return network, demands


def _plan_shape(result):
    """The exact admitted structure: per-demand paths and edge widths."""
    return {
        flow.demand_id: (tuple(flow.paths), tuple(sorted(
            flow.edge_widths().items()
        )))
        for flow in result.plan.flows()
    }


# ----------------------------------------------------------------------
# Core selection


def test_default_core_is_compiled(monkeypatch):
    monkeypatch.delenv(ROUTING_CORE_ENV, raising=False)
    assert active_routing_core() == "compiled"


def test_invalid_core_rejected(monkeypatch):
    monkeypatch.setenv(ROUTING_CORE_ENV, "vectorised")
    with pytest.raises(ConfigurationError, match="REPRO_ROUTING_CORE"):
        active_routing_core()


def test_core_env_read_per_call(monkeypatch):
    monkeypatch.setenv(ROUTING_CORE_ENV, "reference")
    assert active_routing_core() == "reference"
    monkeypatch.setenv(ROUTING_CORE_ENV, "compiled")
    assert active_routing_core() == "compiled"


# ----------------------------------------------------------------------
# Snapshot layer


def test_snapshot_matches_reference_rates():
    network, _ = _instance(SCENARIOS[0], SEEDS[0])
    link = LinkModel()  # length-based probabilities, the realistic case
    snapshot = compile_network(network, link)
    cache = ChannelRateCache(network, link)
    for width in (1, 2, 5):
        column = snapshot.width_rates(width)
        for (u, v), eid in snapshot.edge_index.items():
            assert column[eid] == cache.rate(u, v, width)
    assert snapshot.num_nodes == network.num_nodes
    assert snapshot.num_edges == network.num_edges


def test_snapshot_shared_through_rate_cache():
    network, _ = _instance(SCENARIOS[0], SEEDS[0])
    cache = ChannelRateCache(network, LINK)
    first = snapshot_for(network, LINK, cache)
    assert isinstance(first, CompiledNetwork)
    assert snapshot_for(network, LINK, cache) is first
    # A cache bound to a different link model must not leak its snapshot.
    assert snapshot_for(network, LinkModel(fixed_p=0.9), cache) is not first


# ----------------------------------------------------------------------
# Algorithm 1 parity


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("seed", SEEDS)
def test_alg1_parity_random_banned_sets(scenario, seed):
    network, demands = _instance(scenario, seed)
    rng = ensure_rng(seed + 1)
    switches = network.switches()
    edges = network.edge_keys()
    ledger = QubitLedger(network)
    # Consume some qubits so the feasibility checks actually bite.
    for node in switches[::3]:
        ledger.reserve(node, min(2, int(ledger.remaining(node))))
    for trial in range(12):
        demand = demands[trial % len(demands)]
        width = 1 + trial % 3
        banned_nodes = frozenset(
            int(s) for s in rng.choice(switches, size=3, replace=False)
        )
        picked = rng.choice(len(edges), size=4, replace=False)
        banned_edges = frozenset(edges[int(i)] for i in picked)
        results = {}
        for core in ("reference", "compiled"):
            with routing_core(core):
                results[core] = largest_entanglement_rate_path(
                    network, LINK, SWAP, demand.source, demand.destination,
                    width, ledger, banned_nodes=banned_nodes,
                    banned_edges=banned_edges,
                )
        assert results["reference"] == results["compiled"]


def test_alg1_parity_infeasible_cases(diamond_network):
    ledger = QubitLedger(diamond_network)
    for node in (2, 3, 4, 5):
        ledger.reserve(node, 10)  # drain every switch
    for core in ("reference", "compiled"):
        with routing_core(core):
            assert largest_entanglement_rate_path(
                diamond_network, LINK, SWAP, 0, 1, 1, ledger
            ) is None
            # Banned endpoint short-circuits identically.
            assert largest_entanglement_rate_path(
                diamond_network, LINK, SWAP, 0, 1, 1,
                banned_nodes=frozenset({0}),
            ) is None


# ----------------------------------------------------------------------
# Algorithm 2 parity


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("seed", SEEDS)
def test_alg2_parity(scenario, seed):
    network, demands = _instance(scenario, seed)
    ledger = QubitLedger(network)
    for node in network.switches()[::4]:
        ledger.reserve(node, min(3, int(ledger.remaining(node))))
    max_width = min(3, default_max_width(network))
    for demand in demands[:3]:
        per_core = {}
        for core in ("reference", "compiled"):
            with routing_core(core):
                per_core[core] = select_paths(
                    network, LINK, SWAP, demand, h=3, max_width=max_width,
                    ledger=ledger,
                )
        # PathCandidate is a frozen dataclass: equality covers nodes,
        # width and the exact float rate of every selected path.
        assert per_core["reference"] == per_core["compiled"]


def test_alg2_parity_max_hops(line_network):
    demand = Demand(0, *line_network.users())
    per_core = {}
    for core in ("reference", "compiled"):
        with routing_core(core):
            per_core[core] = select_paths(
                line_network, LINK, SWAP, demand, h=2, max_width=2,
                max_hops=4,
            )
    assert per_core["reference"] == per_core["compiled"]


# ----------------------------------------------------------------------
# Equation 1 parity


@pytest.mark.parametrize("scenario", SCENARIOS[:2])
def test_equation1_parity_with_extra_width_probes(scenario):
    network, demands = _instance(scenario, SEEDS[0])
    with routing_core("compiled"):
        result = make_router("alg-n-fusion").route(network, demands, LINK, SWAP)
    cache = ChannelRateCache(network, LINK)
    arity_swap = SwapModel(q=0.9, per_qubit=True)  # arity-sensitive
    for flow in result.plan.flows():
        probes = [None] + [{edge: 1} for edge in flow.edges()]
        if len(flow.edges()) >= 2:
            probes.append({edge: 2 for edge in flow.edges()[:2]})
        for extra in probes:
            for swap_model in (SWAP, arity_swap):
                rates = {}
                for core in ("reference", "compiled"):
                    with routing_core(core):
                        rates[core] = flow.entanglement_rate(
                            network, LINK, swap_model,
                            extra_widths=extra, rate_cache=cache,
                        )
                assert rates["reference"] == rates["compiled"]
                # The rate cache is an optimisation, never a semantic.
                with routing_core("compiled"):
                    assert flow.entanglement_rate(
                        network, LINK, swap_model, extra_widths=extra
                    ) == rates["compiled"]


def test_fusion_arity_cache_tracks_mutations():
    flow = FlowLikeGraph(0, 0, 1)
    flow.add_path((0, 2, 3, 1), width=2)

    def brute_force(node):
        return sum(
            width
            for (a, b), width in flow.edge_widths().items()
            if node in (a, b)
        )

    assert all(flow.fusion_arity(n) == brute_force(n) for n in flow.nodes())
    flow.add_path((0, 4, 5, 1), width=1)
    assert all(flow.fusion_arity(n) == brute_force(n) for n in flow.nodes())
    flow.widen_edge(2, 3)
    assert flow.fusion_arity(2) == brute_force(2) == 5
    # Re-adding an existing path is a width upgrade and must invalidate.
    flow.add_path((0, 4, 5, 1), width=3)
    assert flow.fusion_arity(4) == brute_force(4) == 6
    assert flow.fusion_arity(99) == 0


# ----------------------------------------------------------------------
# Whole-router parity


# ----------------------------------------------------------------------
# remove_path / capacity release (the serving loop's departure path)


def _incident_width(flow, node):
    return sum(
        width
        for (a, b), width in flow.edge_widths().items()
        if node in (a, b)
    )


def test_remove_path_released_width_accounting():
    flow = FlowLikeGraph(0, 0, 1)
    flow.add_path((0, 2, 3, 1), width=2)
    flow.add_path((0, 4, 3, 1), width=1)
    flow.widen_edge(2, 3)  # an Alg-4 extra rides on the removed path
    before = flow.edge_widths()
    released = flow.remove_path((0, 2, 3, 1))
    after = flow.edge_widths()
    # Conservation: every edge's width is split between released and kept.
    for key, width in before.items():
        assert released.get(key, 0) + after.get(key, 0) == width
    # Edges only the removed path covered go entirely, extras included.
    assert released[(0, 2)] == 2
    assert released[(2, 3)] == 3
    assert (0, 2) not in after and (2, 3) not in after
    # The shared edge drops to the surviving path's width.
    assert released[(1, 3)] == 1 and after[(1, 3)] == 1
    assert flow.paths == [(0, 4, 3, 1)]
    # The arity cache tracks the removal exactly.
    for node in (0, 1, 2, 3, 4):
        assert flow.fusion_arity(node) == _incident_width(flow, node)
    from repro.exceptions import RoutingError

    with pytest.raises(RoutingError):
        flow.remove_path((0, 2, 3, 1))


def test_remove_path_matches_rebuilt_flow():
    # Removing a path must leave exactly the flow that would have been
    # built without it (no widen extras involved).
    flow = FlowLikeGraph(3, 0, 1)
    flow.add_path((0, 2, 1), width=3)
    flow.add_path((0, 4, 5, 1), width=2)
    flow.add_path((0, 2, 5, 1), width=1)
    flow.remove_path((0, 4, 5, 1))
    rebuilt = FlowLikeGraph(3, 0, 1)
    rebuilt.add_path((0, 2, 1), width=3)
    rebuilt.add_path((0, 2, 5, 1), width=1)
    assert flow.edge_widths() == rebuilt.edge_widths()
    assert flow.paths == rebuilt.paths


@pytest.mark.parametrize("scenario", SCENARIOS[:2])
def test_remove_path_rate_parity_across_cores(scenario):
    network, demands = _instance(scenario, SEEDS[0])
    with routing_core("compiled"):
        result = make_router("alg-n-fusion").route(network, demands, LINK, SWAP)
    flows = [f for f in result.plan.flows() if f.num_paths >= 2]
    assert flows, "parity sweep needs at least one multi-path flow"
    for flow in flows[:3]:
        probe = flow.copy()
        # Interleave departure-style removal with a widen in between.
        probe.remove_path(probe.paths[0])
        first_edge = probe.edges()[0]
        probe.widen_edge(*first_edge)
        rates = {}
        for core in ("reference", "compiled"):
            with routing_core(core):
                rates[core] = probe.entanglement_rate(network, LINK, SWAP)
        assert rates["reference"] == rates["compiled"]
        # Draining every path leaves a zero-rate, zero-edge flow.
        for path in probe.paths:
            probe.remove_path(path)
        assert probe.edge_widths() == {}
        assert probe.entanglement_rate(network, LINK, SWAP) == 0.0


def test_relay_feasibility_journal_parity():
    network, _ = _instance(SCENARIOS[0], SEEDS[0])
    cache = ChannelRateCache(network, LINK)
    snapshot = snapshot_for(network, LINK, cache)
    ledger = QubitLedger(network)
    switches = network.switches()

    def expected(width):
        return [
            (not user) and ledger.has_at_least(nid, 2 * width)
            for user, nid in zip(snapshot.is_user, snapshot.node_ids)
        ]

    for width in (1, 2):
        assert snapshot.relay_feasible(ledger, width) == expected(width)
    # Incremental reserve/release sequences patch flags via the journal.
    rng = ensure_rng(SEEDS[0] + 1)
    for trial in range(40):
        node = switches[int(rng.integers(len(switches)))]
        free = int(ledger.remaining(node))
        if trial % 3 == 2 and free < 10:
            ledger.release(node, 1)
        elif free:
            ledger.reserve(node, min(2, free))
        for width in (1, 2):
            assert snapshot.relay_feasible(ledger, width) == expected(width)
    # restore() bumps the epoch: derived flags must follow wholesale.
    baseline = ledger.snapshot()
    ledger.reserve(switches[0], int(ledger.remaining(switches[0])))
    assert snapshot.relay_feasible(ledger, 1) == expected(1)
    ledger.restore(baseline)
    assert snapshot.relay_feasible(ledger, 1) == expected(1)
    # Journal compaction (epoch bump mid-stream) keeps patching exact.
    node = switches[0]
    for _ in range(1200):
        ledger.reserve(node, 1)
        ledger.release(node, 1)
    assert snapshot.relay_feasible(ledger, 1) == expected(1)
    assert snapshot.relay_feasible(ledger, 2) == expected(2)


# ----------------------------------------------------------------------
# Whole-router parity


@pytest.mark.parametrize("key", sorted(router_keys()))
def test_router_parity_across_cores(key):
    network, demands = _instance(SCENARIOS[0], SEEDS[1])
    results = {}
    for core in ("reference", "compiled"):
        with routing_core(core):
            results[core] = make_router(key).route(
                network, demands, LINK, SWAP
            )
    reference, compiled = results["reference"], results["compiled"]
    assert reference.total_rate == compiled.total_rate
    assert reference.demand_rates == compiled.demand_rates
    assert _plan_shape(reference) == _plan_shape(compiled)
    assert reference.remaining_qubits == compiled.remaining_qubits

"""Tests for the extra topology generators and the lattice study."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.node import NodeKind
from repro.network.topology.scale_free import (
    barabasi_albert_network,
    random_geometric_network,
)
from repro.experiments.lattice import corner_pair_grid, lattice_distance_study
from repro.utils.rng import ensure_rng


class TestBarabasiAlbert:
    def test_connected_and_sized(self):
        net = barabasi_albert_network(num_switches=60, rng=ensure_rng(1))
        assert net.is_connected()
        assert len(net.switches()) == 60

    def test_average_degree_tracks_attachments(self):
        net = barabasi_albert_network(
            num_switches=100, attachments=4, rng=ensure_rng(2)
        )
        assert net.average_degree(NodeKind.SWITCH) == pytest.approx(8.0, rel=0.3)

    def test_hubs_exist(self):
        net = barabasi_albert_network(
            num_switches=150, attachments=3, rng=ensure_rng(3)
        )
        degrees = [net.degree(s) for s in net.switches()]
        assert max(degrees) > 3 * (sum(degrees) / len(degrees))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            barabasi_albert_network(num_switches=10, attachments=0)
        with pytest.raises(ConfigurationError):
            barabasi_albert_network(num_switches=10, attachments=10)


class TestRandomGeometric:
    def test_connected_after_repair(self):
        net = random_geometric_network(num_switches=60, rng=ensure_rng(4))
        assert net.is_connected()

    def test_radius_bounds_edge_lengths(self):
        radius = 3000.0
        net = random_geometric_network(
            num_switches=60, radius=radius, rng=ensure_rng(5)
        )
        switch_set = set(net.switches())
        long_edges = [
            e for e in net.edges()
            if e.u in switch_set and e.v in switch_set and e.length > radius
        ]
        # Only connectivity-repair edges may exceed the radius; they are
        # rare in a reasonably dense sample.
        assert len(long_edges) <= 3

    def test_invalid_radius(self):
        with pytest.raises(ConfigurationError):
            random_geometric_network(num_switches=10, radius=-1.0)


class TestLatticeStudy:
    def test_corner_pair_grid_structure(self):
        network, demand = corner_pair_grid(side=4)
        assert network.node(demand.source).is_user
        assert network.node(demand.destination).is_user
        assert network.degree(demand.source) >= 1
        assert network.is_connected()

    def test_distance_study_shapes(self):
        sweep = lattice_distance_study(quick=True)
        alg = sweep.series_for("ALG-N-FUSION")
        qcast = sweep.series_for("Q-CAST")
        advantage = sweep.series_for("advantage")
        # Classic swapping decays fast with distance; n-fusion much slower,
        # so the advantage grows monotonically with the grid side.
        assert qcast == sorted(qcast, reverse=True)
        assert advantage == sorted(advantage)
        assert all(a >= c for a, c in zip(alg, qcast))

    def test_text_rendering(self):
        sweep = lattice_distance_study(quick=True)
        text = sweep.to_text()
        assert "Lattice distance study" in text
        assert "advantage" in text

"""The shared spec-grammar base (``repro.specs``).

Covers the uniform surface the six grammars inherit — ``parse`` /
``to_string`` / ``config_dict`` round-trips, uniform unknown-parameter
and duplicate errors naming the valid keys — and pins the cache keys
byte-for-byte against digests frozen *before* the parsers moved onto
the base, so the refactor can never silently move a cache entry
(``CACHE_FORMAT_VERSION`` intentionally did not change).
"""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.cache import CACHE_FORMAT_VERSION, ResultCache
from repro.experiments.estimators import EstimatorSpec, EstimatorSpecError
from repro.experiments.scenarios import (
    ScenarioSpec,
    ScenarioSpecError,
    as_setting,
)
from repro.routing.registry import RouterSpec, RouterSpecError
from repro.service.arrivals import ArrivalSpec, ArrivalSpecError
from repro.service.faults import FaultSpec, FaultSpecError, RepairSpec
from repro.specs import (
    SpecBase,
    SpecError,
    format_value,
    parse_params,
    parse_value,
    spec_subclasses,
    split_spec,
)

ALL_SPECS = [
    RouterSpec, ScenarioSpec, EstimatorSpec, ArrivalSpec,
    FaultSpec, RepairSpec,
]
ALL_ERRORS = [
    RouterSpecError, ScenarioSpecError, EstimatorSpecError, ArrivalSpecError,
    FaultSpecError,
]

#: One representative spec string per grammar that exercises parameters.
SAMPLE_STRINGS = {
    RouterSpec: "alg-n-fusion:include_alg4=false,h=5",
    ScenarioSpec: "waxman:switches=30,users=6,states=5",
    EstimatorSpec: "mc:trials=200,engine=vectorized,antithetic=true",
    ArrivalSpec: "poisson:rate=1.5,hold=fixed:mean=12.5",
    FaultSpec: "faults:link_mtbf=120.0,switch_p=0.01",
    RepairSpec: "reroute:retries=4,backoff=fixed:base=2.0",
}

#: One spec string with an unknown parameter per grammar.
UNKNOWN_PARAM_STRINGS = {
    RouterSpec: "alg-n-fusion:bogus=1",
    ScenarioSpec: "waxman:bogus=1",
    EstimatorSpec: "mc:bogus=1",
    ArrivalSpec: "poisson:bogus=1",
    FaultSpec: "faults:bogus=1",
    RepairSpec: "reroute:bogus=1",
}

#: A valid parameter name per grammar (must appear in unknown errors).
A_VALID_PARAM = {
    RouterSpec: "max_width",
    ScenarioSpec: "switches",
    EstimatorSpec: "trials",
    ArrivalSpec: "hold",
    FaultSpec: "link_mtbf",
    RepairSpec: "retries",
}


class TestSharedSurface:
    def test_spec_subclasses_lists_all_six(self):
        assert spec_subclasses() == ALL_SPECS

    def test_all_inherit_spec_base(self):
        for cls in ALL_SPECS:
            assert issubclass(cls, SpecBase)

    def test_all_errors_inherit_spec_error(self):
        for err in ALL_ERRORS:
            assert issubclass(err, SpecError)
            # The historical bases must survive: argparse relies on
            # ValueError, the library's except clauses on
            # ConfigurationError.
            assert issubclass(err, ValueError)
            assert issubclass(err, ConfigurationError)

    @pytest.mark.parametrize("cls", ALL_SPECS, ids=lambda c: c.__name__)
    def test_parse_to_string_round_trip(self, cls):
        spec = cls.parse(SAMPLE_STRINGS[cls])
        assert cls.parse(spec.to_string()) == spec
        assert str(spec) == spec.to_string()
        # parse is an alias of the historical from_string.
        assert cls.from_string(SAMPLE_STRINGS[cls]) == spec

    @pytest.mark.parametrize("cls", ALL_SPECS, ids=lambda c: c.__name__)
    def test_config_dict_round_trip(self, cls):
        spec = cls.parse(SAMPLE_STRINGS[cls])
        again = cls.parse(spec.to_string())
        assert spec.config_dict() == again.config_dict()

    @pytest.mark.parametrize("cls", ALL_SPECS, ids=lambda c: c.__name__)
    def test_unknown_parameter_errors_name_valid_keys(self, cls):
        with pytest.raises(cls.spec_error) as exc:
            cls.parse(UNKNOWN_PARAM_STRINGS[cls])
        message = str(exc.value)
        assert "'bogus'" in message
        assert "valid parameters" in message
        assert A_VALID_PARAM[cls] in message

    @pytest.mark.parametrize("cls", ALL_SPECS, ids=lambda c: c.__name__)
    def test_duplicate_parameter_rejected(self, cls):
        text = SAMPLE_STRINGS[cls]
        key, _, rest = text.partition(":")
        first = rest.split(",")[0]
        with pytest.raises(cls.spec_error, match="duplicate parameter"):
            cls.parse(f"{key}:{first},{first}")

    @pytest.mark.parametrize("cls", ALL_SPECS, ids=lambda c: c.__name__)
    def test_empty_key_rejected(self, cls):
        with pytest.raises(cls.spec_error, match="empty"):
            cls.parse(":oops=1")

    @pytest.mark.parametrize("cls", ALL_SPECS, ids=lambda c: c.__name__)
    def test_malformed_parameter_rejected(self, cls):
        key = SAMPLE_STRINGS[cls].partition(":")[0]
        with pytest.raises(cls.spec_error, match="malformed parameter"):
            cls.parse(f"{key}:notanassignment")

    def test_estimator_config_dict_equals_fingerprint(self):
        for text in ("analytic", SAMPLE_STRINGS[EstimatorSpec]):
            spec = EstimatorSpec.parse(text)
            assert spec.config_dict() == spec.fingerprint()


class TestValueGrammar:
    def test_parse_value_shapes(self):
        assert parse_value("true") is True
        assert parse_value("False") is False
        assert parse_value("none") is None
        assert parse_value("null") is None
        assert parse_value("42") == 42
        assert parse_value("2.5") == 2.5
        assert parse_value("waxman") == "waxman"

    def test_format_value_inverse(self):
        for value in (True, False, None, 42, 2.5, "waxman"):
            assert parse_value(format_value(value)) == value

    def test_format_value_rejects_unparseable(self):
        with pytest.raises(SpecError, match="round trip"):
            format_value("has,comma")
        with pytest.raises(SpecError, match="round trip"):
            format_value([1, 2])

    def test_split_spec(self):
        assert split_spec("key", "thing") == ("key", None)
        assert split_spec("key:a=1", "thing") == ("key", "a=1")
        assert split_spec("key:", "thing") == ("key", "")
        with pytest.raises(SpecError, match="empty thing key"):
            split_spec(":a=1", "thing")

    def test_parse_params_preserves_order_and_rawness(self):
        params = parse_params("b=2,a=one", text="t", what="thing")
        assert list(params.items()) == [("b", "2"), ("a", "one")]

    def test_parse_params_eq_in_value_partitions_at_first(self):
        params = parse_params("hold=exp:mean=30", text="t", what="thing")
        assert params == {"hold": "exp:mean=30"}

    def test_parse_params_forbid_eq_in_value(self):
        with pytest.raises(SpecError, match="malformed"):
            parse_params(
                "a=b=c", text="t", what="thing", forbid_eq_in_value=True
            )

    def test_parse_params_empty_value_flag(self):
        with pytest.raises(SpecError, match="malformed"):
            parse_params("a=", text="t", what="thing")
        assert parse_params(
            "a=", text="t", what="thing", allow_empty_value=True
        ) == {"a": ""}


class TestCacheKeysFrozen:
    """Cache keys must not move: digests recorded on the pre-refactor
    parsers (and ``CACHE_FORMAT_VERSION`` pinned — bumping it would
    mask an accidental identity change as an intentional migration)."""

    FROZEN = [
        (
            ("paper-default", "alg-n-fusion", None),
            "be4fe37efdb44398a3dc2f29a766a2c143a2137581f2edf3f99298e588d15cd6",
        ),
        (
            (
                "aiello:switches=40,states=8,q=0.85",
                "alg-n-fusion:include_alg4=false,h=5",
                "mc:trials=200,antithetic=true",
            ),
            "812151286ca0c497f6b0ca4b47608d52c6de91d01315ff714ac6e6139740a407",
        ),
        (
            (
                "grid:switches=49,users=8,p=0.3",
                "q-cast",
                "mc:trials=100,engine=reference",
            ),
            "1529ddcd5f13b4b5e90feb835a86299b8f229f2678edb4e8741ade26dcb22eca",
        ),
        (
            ("waxman:switches=30,users=6,states=5", "b1", "analytic"),
            "802a92a1a12e105ce54e6b9dea2f3670937fdb031f89f23f2dbfba62d6f54fa0",
        ),
    ]

    def test_cache_format_version_not_bumped(self):
        assert CACHE_FORMAT_VERSION == 4

    @pytest.mark.parametrize(
        "case, digest", FROZEN, ids=[c[0][0] for c in FROZEN]
    )
    def test_key_bytes_identical(self, tmp_path, case, digest):
        scenario, router, estimator = case
        cache = ResultCache(tmp_path)
        assert cache.key_for(as_setting(scenario), router, estimator) == digest

    def test_arrival_config_dict_frozen(self):
        spec = ArrivalSpec.parse("poisson:rate=1.5,hold=fixed:mean=12.5")
        assert spec.config_dict() == {
            "kind": "poisson",
            "rate": 1.5,
            "hold": {"dist": "fixed", "mean": 12.5},
        }

"""Structure tests for the per-figure experiment definitions.

``run_settings`` is stubbed so each figure's sweep structure (x values,
titles, settings wiring) is checked without paying for real routing.
"""

import pytest

import repro.experiments.runner as runner_module
from repro.experiments.config import ExperimentSetting
from repro.experiments.figures import (
    fig7_generators,
    fig8a_link_probability,
    fig8b_swap_probability,
    fig9a_qubits,
    fig9b_ext_switches,
    fig9b_switches,
    fig9c_states,
    fig9d_degree,
)
from repro.experiments.tables import headline_settings


@pytest.fixture
def stub_runner(monkeypatch):
    """Replace run_settings with a recorder returning fixed rates."""
    calls = []

    def fake_run_settings(settings, routers=None, workers=None, cache=None,
                          shard=None, estimator=None):
        calls.extend(settings)
        return [
            {
                "ALG-N-FUSION": 2.0,
                "Q-CAST": 1.0,
                "Q-CAST-N": 1.5,
                "B1": 1.2,
            }
            for _ in settings
        ]

    monkeypatch.setattr(runner_module, "run_settings", fake_run_settings)
    return calls


class TestFigureDefinitions:
    def test_fig7_sweeps_generators(self, stub_runner):
        sweep = fig7_generators(quick=True)
        assert sweep.x_values == ["waxman", "watts_strogatz", "aiello"]
        generators = [s.network.generator for s in stub_runner]
        assert generators == ["waxman", "watts_strogatz", "aiello"]
        assert "Figure 7" in sweep.title

    def test_fig8a_sweeps_p(self, stub_runner):
        sweep = fig8a_link_probability(quick=True)
        assert sweep.x_values == [0.1, 0.2, 0.3, 0.4]
        assert [s.fixed_p for s in stub_runner] == [0.1, 0.2, 0.3, 0.4]

    def test_fig8b_sweeps_q(self, stub_runner):
        sweep = fig8b_swap_probability(quick=True)
        assert sweep.x_values == [0.3, 0.5, 0.7, 0.9]
        assert [s.swap_q for s in stub_runner] == [0.3, 0.5, 0.7, 0.9]

    def test_fig9a_sweeps_capacity(self, stub_runner):
        sweep = fig9a_qubits(quick=True)
        assert sweep.x_values == [6, 8, 10, 12]
        assert [s.network.qubit_capacity for s in stub_runner] == [6, 8, 10, 12]

    def test_fig9b_keeps_paper_switch_counts(self, stub_runner):
        sweep = fig9b_switches(quick=True)
        assert sweep.x_values == [50, 100, 200, 400]
        assert [s.network.num_switches for s in stub_runner] == [50, 100, 200, 400]
        # Quick mode shrinks averaging, never the sweep itself.
        assert all(s.num_networks == 1 for s in stub_runner)

    def test_fig9b_ext_quick_matches_fig9b(self, stub_runner):
        sweep = fig9b_ext_switches(quick=True)
        assert sweep.x_values == [50, 100, 200, 400]
        assert [s.network.num_switches for s in stub_runner] == [
            50, 100, 200, 400,
        ]

    def test_fig9b_ext_full_extends_beyond_paper(self, stub_runner):
        sweep = fig9b_ext_switches(quick=False)
        assert sweep.x_values == [50, 100, 200, 400, 800, 1600]
        by_count = {
            s.network.num_switches: s.num_networks for s in stub_runner
        }
        # Paper-range points keep the paper's averaging; the extended
        # tail runs fewer samples to stay tractable.
        assert by_count[400] == 5
        assert by_count[800] == by_count[1600] == 2

    def test_fig9c_sweeps_states(self, stub_runner):
        sweep = fig9c_states(quick=True)
        assert sweep.x_values == [10, 20, 30, 40]
        assert [s.num_states for s in stub_runner] == [10, 20, 30, 40]

    def test_fig9d_sweeps_degree(self, stub_runner):
        sweep = fig9d_degree(quick=True)
        assert sweep.x_values == [5, 10, 15, 20]
        assert [s.network.average_degree for s in stub_runner] == [
            5.0, 10.0, 15.0, 20.0,
        ]

    def test_quick_mode_shrinks_networks(self, stub_runner):
        fig8a_link_probability(quick=True)
        assert all(s.network.num_switches == 50 for s in stub_runner)

    def test_full_mode_uses_paper_scale(self, stub_runner):
        fig8a_link_probability(quick=False)
        assert all(s.network.num_switches == 100 for s in stub_runner)
        assert all(s.num_networks == 5 for s in stub_runner)

    def test_series_recorded_per_point(self, stub_runner):
        sweep = fig8b_swap_probability(quick=True)
        for series in sweep.series.values():
            assert len(series) == 4


class TestHeadlineSettings:
    def test_covers_default_and_corners(self):
        settings = headline_settings(quick=True)
        assert len(settings) == 4
        assert settings[0].fixed_p is None
        assert settings[1].fixed_p == 0.1
        assert settings[2].fixed_p == 0.2
        assert settings[3].swap_q == 0.5

    def test_full_mode_scale(self):
        settings = headline_settings(quick=False)
        assert settings[0].network.num_switches == 100


class TestExperimentsCliAll:
    def test_all_runs_every_experiment(self, monkeypatch, capsys):
        import repro.experiments.__main__ as cli

        ran = []

        class FakeResult:
            def to_text(self):
                return "fake"

        for name in list(cli.EXPERIMENTS):
            monkeypatch.setitem(
                cli.EXPERIMENTS, name,
                lambda quick, n=name, **kwargs: (ran.append(n), FakeResult())[1],
            )
        assert cli.main(["all"]) == 0
        # Quick-mode `all` skips fig9b-ext (identical to fig9b).
        assert set(ran) == set(cli.EXPERIMENTS) - {"fig9b-ext"}
        ran.clear()
        assert cli.main(["all", "--full"]) == 0
        assert set(ran) == set(cli.EXPERIMENTS)

"""Unit tests for link / swap success models."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.quantum.noise import (
    LinkModel,
    SwapModel,
    channel_success_probability,
    link_success_probability,
)


class TestLinkSuccessProbability:
    def test_exponential_decay(self):
        assert link_success_probability(0.0) == 1.0
        assert link_success_probability(10_000.0, alpha=1e-4) == pytest.approx(
            math.exp(-1.0)
        )

    def test_monotone_in_length(self):
        values = [link_success_probability(L) for L in (0, 100, 1000, 10000)]
        assert values == sorted(values, reverse=True)

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            link_success_probability(-1.0)

    def test_bad_alpha_raises(self):
        with pytest.raises(ConfigurationError):
            link_success_probability(1.0, alpha=0.0)


class TestChannelSuccessProbability:
    def test_width_one_is_p(self):
        assert channel_success_probability(0.3, 1) == pytest.approx(0.3)

    def test_formula(self):
        assert channel_success_probability(0.3, 3) == pytest.approx(
            1 - 0.7**3
        )

    def test_zero_width_is_zero(self):
        assert channel_success_probability(0.5, 0) == 0.0

    def test_p_one_saturates(self):
        assert channel_success_probability(1.0, 2) == 1.0

    def test_monotone_in_width(self):
        values = [channel_success_probability(0.2, w) for w in range(1, 8)]
        assert values == sorted(values)
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_tiny_p_approximates_wp(self):
        # The paper's small-p approximation: 1-(1-p)^w ~ w*p.
        p, w = 1e-6, 5
        assert channel_success_probability(p, w) == pytest.approx(w * p, rel=1e-4)

    def test_invalid_p_raises(self):
        with pytest.raises(ConfigurationError):
            channel_success_probability(1.2, 1)


class TestLinkModel:
    def test_fixed_p_overrides_length(self):
        model = LinkModel(fixed_p=0.25)
        assert model.success_probability(0.0) == 0.25
        assert model.success_probability(99999.0) == 0.25

    def test_length_based(self):
        model = LinkModel(alpha=1e-3)
        assert model.success_probability(1000.0) == pytest.approx(math.exp(-1.0))

    def test_channel_probability(self):
        model = LinkModel(fixed_p=0.5)
        assert model.channel_probability(1.0, 2) == pytest.approx(0.75)

    def test_invalid_fixed_p(self):
        with pytest.raises(ConfigurationError):
            LinkModel(fixed_p=2.0)

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            LinkModel(alpha=-1.0)


class TestSwapModel:
    def test_constant_q(self):
        model = SwapModel(q=0.8)
        assert model.success_probability(2) == 0.8
        assert model.success_probability(5) == 0.8

    def test_zero_arity_is_certain(self):
        assert SwapModel(q=0.5).success_probability(0) == 1.0

    def test_arity_one(self):
        assert SwapModel(q=0.5).success_probability(1) == 0.5

    def test_per_qubit_extension(self):
        model = SwapModel(q=0.9, per_qubit=True)
        assert model.success_probability(3) == pytest.approx(0.81)

    def test_invalid_q(self):
        with pytest.raises(ConfigurationError):
            SwapModel(q=-0.1)

"""Round-trip tests for network/demand serialization."""

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import generate_demands
from repro.network.serialization import (
    demands_from_dict,
    demands_to_dict,
    load_instance,
    network_from_dict,
    network_to_dict,
    save_instance,
)
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.nfusion import AlgNFusion
from repro.utils.rng import ensure_rng


@pytest.fixture
def instance():
    rng = ensure_rng(404)
    network = build_network(NetworkConfig(num_switches=20, num_users=4), rng)
    demands = generate_demands(network, 5, rng)
    return network, demands


class TestNetworkRoundTrip:
    def test_structure_preserved(self, instance):
        network, _ = instance
        clone = network_from_dict(network_to_dict(network))
        assert clone.nodes() == network.nodes()
        assert clone.edge_keys() == network.edge_keys()
        assert clone.users() == network.users()
        for u, v in network.edge_keys():
            assert clone.edge_length(u, v) == network.edge_length(u, v)
        for node in network.nodes():
            assert clone.qubit_capacity(node) == network.qubit_capacity(node)
            assert clone.position(node) == network.position(node)

    def test_json_serialisable(self, instance):
        network, _ = instance
        text = json.dumps(network_to_dict(network))
        clone = network_from_dict(json.loads(text))
        assert clone.num_edges == network.num_edges

    def test_bad_version_rejected(self):
        with pytest.raises(ConfigurationError):
            network_from_dict({"format_version": 99, "nodes": [], "edges": []})

    def test_malformed_node_rejected(self):
        with pytest.raises(ConfigurationError):
            network_from_dict(
                {"format_version": 1, "nodes": [{"id": "x"}], "edges": []}
            )


class TestDemandsRoundTrip:
    def test_preserved(self, instance):
        _, demands = instance
        clone = demands_from_dict(demands_to_dict(demands))
        assert len(clone) == len(demands)
        for a, b in zip(clone, demands):
            assert (a.demand_id, a.source, a.destination) == (
                b.demand_id,
                b.source,
                b.destination,
            )

    def test_bad_version_rejected(self):
        with pytest.raises(ConfigurationError):
            demands_from_dict({"format_version": 0, "demands": []})


class TestInstanceFile:
    def test_save_load_and_route_equivalence(self, instance, tmp_path):
        """Routing the loaded instance gives identical results."""
        network, demands = instance
        path = tmp_path / "instance.json"
        save_instance(path, network, demands)
        loaded_network, loaded_demands = load_instance(path)
        link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.9)
        original = AlgNFusion().route(network, demands, link, swap)
        reloaded = AlgNFusion().route(loaded_network, loaded_demands, link, swap)
        assert reloaded.total_rate == pytest.approx(original.total_rate)
        assert reloaded.demand_rates == pytest.approx(original.demand_rates)

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"oops": 1}))
        with pytest.raises(ConfigurationError):
            load_instance(path)

"""Unit tests for circuit-level fusion operations."""

import numpy as np
import pytest

from repro.exceptions import FusionError
from repro.quantum.fusion import (
    apply_fusion_corrections,
    bell_state_measurement,
    ghz_measurement,
    pauli_x_removal,
    prepare_bell_pair,
    prepare_ghz,
)
from repro.quantum.stabilizer import StabilizerTableau


def make(n, seed=0):
    return StabilizerTableau(n, np.random.default_rng(seed))


class TestPreparation:
    def test_bell_pair(self):
        t = make(2)
        prepare_bell_pair(t, 0, 1)
        assert t.is_bell_pair_up_to_pauli(0, 1)

    def test_ghz_various_sizes(self):
        for n in (2, 3, 4, 6):
            t = make(n)
            prepare_ghz(t, list(range(n)))
            assert t.is_ghz_up_to_pauli(list(range(n)))

    def test_ghz_rejects_single_qubit(self):
        t = make(2)
        with pytest.raises(FusionError):
            prepare_ghz(t, [0])

    def test_ghz_rejects_duplicates(self):
        t = make(3)
        with pytest.raises(FusionError):
            prepare_ghz(t, [0, 0, 1])

    def test_ghz_perfect_correlation(self):
        for seed in range(8):
            t = make(4, seed)
            prepare_ghz(t, [0, 1, 2, 3])
            outcomes = [t.measure_z(i) for i in range(4)]
            assert len(set(outcomes)) == 1


class TestSwapping:
    def test_bsm_swap_chain_of_two(self):
        t = make(4, seed=1)
        prepare_bell_pair(t, 0, 1)
        prepare_bell_pair(t, 2, 3)
        bell_state_measurement(t, 1, 2)
        assert t.is_bell_pair_up_to_pauli(0, 3)

    def test_bsm_repeater_chain(self):
        # 4 Bell pairs in a chain, 3 successive swaps -> end-to-end Bell.
        t = make(8, seed=2)
        for i in range(4):
            prepare_bell_pair(t, 2 * i, 2 * i + 1)
        bell_state_measurement(t, 1, 2)
        bell_state_measurement(t, 3, 4)
        bell_state_measurement(t, 5, 6)
        assert t.is_bell_pair_up_to_pauli(0, 7)

    def test_measured_qubits_are_disentangled(self):
        t = make(4, seed=3)
        prepare_bell_pair(t, 0, 1)
        prepare_bell_pair(t, 2, 3)
        ghz_measurement(t, [1, 2])
        assert t.is_product_z_eigenstate(1)
        assert t.is_product_z_eigenstate(2)


class TestNFusion:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_star_fusion_of_n_bell_pairs(self, n):
        """Fusing one qubit of each of n Bell pairs leaves the n partners
        in an n-GHZ state — the paper's Figure 2 operation."""
        t = make(2 * n, seed=n)
        switch_qubits = []
        remote_qubits = []
        for i in range(n):
            a, b = 2 * i, 2 * i + 1
            prepare_bell_pair(t, a, b)
            switch_qubits.append(a)
            remote_qubits.append(b)
        outcomes = ghz_measurement(t, switch_qubits)
        assert len(outcomes) == n
        assert t.is_ghz_up_to_pauli(remote_qubits)

    def test_fusing_ghz_with_bell(self):
        t = make(5, seed=9)
        prepare_ghz(t, [0, 1, 2])
        prepare_bell_pair(t, 3, 4)
        ghz_measurement(t, [2, 3])
        assert t.is_ghz_up_to_pauli([0, 1, 4])

    def test_fusing_two_ghz_states(self):
        t = make(6, seed=10)
        prepare_ghz(t, [0, 1, 2])
        prepare_ghz(t, [3, 4, 5])
        ghz_measurement(t, [2, 3])
        assert t.is_ghz_up_to_pauli([0, 1, 4, 5])

    def test_three_fusion_of_mixed_states(self):
        # GHZ-3 + Bell + Bell through a 3-fusion -> GHZ-4.
        t = make(7, seed=11)
        prepare_ghz(t, [0, 1, 2])
        prepare_bell_pair(t, 3, 4)
        prepare_bell_pair(t, 5, 6)
        ghz_measurement(t, [2, 3, 5])
        assert t.is_ghz_up_to_pauli([0, 1, 4, 6])

    def test_rejects_single_qubit(self):
        t = make(2)
        with pytest.raises(FusionError):
            ghz_measurement(t, [0])

    def test_rejects_duplicates(self):
        t = make(3)
        with pytest.raises(FusionError):
            ghz_measurement(t, [0, 0])


class TestPauliRemoval:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_removal_shrinks_ghz(self, n):
        t = make(n, seed=n)
        prepare_ghz(t, list(range(n)))
        pauli_x_removal(t, 0)
        assert t.is_ghz_up_to_pauli(list(range(1, n)))

    def test_removal_from_bell_leaves_product(self):
        t = make(2, seed=1)
        prepare_bell_pair(t, 0, 1)
        pauli_x_removal(t, 0)
        # Partner ends in |+> or |->; X measurement on it is deterministic.
        assert t.measure_x(1) in (0, 1)
        assert not t.is_bell_pair_up_to_pauli(0, 1)


class TestCorrections:
    def test_corrections_give_canonical_ghz(self):
        """After corrections, the survivors are stabilized by +XX..X and
        +ZZ pairs exactly (not just up to sign)."""
        for seed in range(6):
            n = 3
            t = make(2 * n, seed=seed)
            switch_qubits, remote_qubits = [], []
            for i in range(n):
                prepare_bell_pair(t, 2 * i, 2 * i + 1)
                switch_qubits.append(2 * i)
                remote_qubits.append(2 * i + 1)
            outcomes = ghz_measurement(t, switch_qubits)
            apply_fusion_corrections(t, remote_qubits, outcomes)
            x_all = [0] * (2 * n)
            z_none = [0] * (2 * n)
            for q in remote_qubits:
                x_all[q] = 1
            assert t.contains_pauli(x_all, z_none, up_to_sign=False)
            for a, b in zip(remote_qubits, remote_qubits[1:]):
                zz = [0] * (2 * n)
                zz[a] = 1
                zz[b] = 1
                assert t.contains_pauli([0] * (2 * n), zz, up_to_sign=False)

    def test_corrections_length_mismatch_raises(self):
        t = make(4)
        with pytest.raises(FusionError):
            apply_fusion_corrections(t, [0, 1], [0])

"""Tests for multipartite GHZ-state routing (star fusion extension)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.builder import NetworkConfig, build_network
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.allocation import QubitLedger
from repro.routing.multipartite import (
    MultipartiteDemand,
    MultipartiteRouter,
    StarRoute,
)
from repro.utils.rng import ensure_rng

from tests.conftest import make_diamond_network


@pytest.fixture
def network():
    return build_network(
        NetworkConfig(num_switches=36, num_users=6), ensure_rng(888)
    )


@pytest.fixture
def models():
    return LinkModel(fixed_p=0.6), SwapModel(q=0.9)


class TestMultipartiteDemand:
    def test_basic(self):
        demand = MultipartiteDemand(0, [5, 3, 9])
        assert demand.size == 3
        assert demand.users == (5, 3, 9)

    def test_rejects_duplicates_and_small(self):
        with pytest.raises(ConfigurationError):
            MultipartiteDemand(0, [1, 1, 2])
        with pytest.raises(ConfigurationError):
            MultipartiteDemand(0, [1])


class TestStarRouting:
    def test_three_user_ghz(self, network, models):
        link, swap = models
        users = network.users()[:3]
        demand = MultipartiteDemand(0, users)
        star = MultipartiteRouter().route_demand(network, demand, link, swap)
        assert star is not None
        assert star.fusion_arity == 3
        assert set(star.arms) == set(users)
        for user, nodes in star.arms.items():
            assert nodes[0] == user
            assert nodes[-1] == star.center
            for a, b in zip(nodes, nodes[1:]):
                assert network.has_edge(a, b)
        assert 0.0 < star.rate <= 1.0

    def test_rate_includes_center_fusion(self, network, models):
        """With perfect links, the star rate is q^(relays) * q_center."""
        link = LinkModel(fixed_p=1.0)
        swap = SwapModel(q=0.5)
        users = network.users()[:2]
        demand = MultipartiteDemand(0, users)
        star = MultipartiteRouter().route_demand(network, demand, link, swap)
        assert star is not None
        relays = sum(len(nodes) - 2 for nodes in star.arms.values())
        assert star.rate == pytest.approx(0.5 ** (relays + 1))

    def test_arms_internally_disjoint(self, network, models):
        link, swap = models
        users = network.users()[:4]
        demand = MultipartiteDemand(0, users)
        star = MultipartiteRouter().route_demand(network, demand, link, swap)
        assert star is not None
        interiors = []
        for nodes in star.arms.values():
            interiors.append(set(nodes[1:-1]))
        for i in range(len(interiors)):
            for j in range(i + 1, len(interiors)):
                assert not (interiors[i] & interiors[j])

    def test_bigger_group_has_lower_rate(self, network, models):
        link, swap = models
        users = network.users()
        small = MultipartiteRouter().route_demand(
            network, MultipartiteDemand(0, users[:2]), link, swap
        )
        large = MultipartiteRouter().route_demand(
            network, MultipartiteDemand(1, users[:5]), link, swap
        )
        assert small is not None and large is not None
        assert large.rate <= small.rate

    def test_ledger_is_charged(self, network, models):
        link, swap = models
        users = network.users()[:3]
        ledger = QubitLedger(network)
        before = ledger.total_free_switch_qubits()
        star = MultipartiteRouter().route_demand(
            network, MultipartiteDemand(0, users), link, swap, ledger
        )
        assert star is not None
        assert ledger.total_free_switch_qubits() < before

    def test_route_all_respects_capacity(self, network, models):
        link, swap = models
        users = network.users()
        demands = [
            MultipartiteDemand(i, users[i : i + 3]) for i in range(3)
        ]
        routes = MultipartiteRouter().route_all(network, demands, link, swap)
        usage = {}
        for star in routes.values():
            for nodes in star.arms.values():
                for a, b in zip(nodes, nodes[1:]):
                    usage[a] = usage.get(a, 0) + 1
                    usage[b] = usage.get(b, 0) + 1
        for switch in network.switches():
            assert usage.get(switch, 0) <= network.qubit_capacity(switch)

    def test_infeasible_when_capacity_exhausted(self, models):
        link, swap = models
        network = make_diamond_network(capacity=2)
        # Capacity 2 cannot host a 3-arm star (needs 3 center qubits).
        demand = MultipartiteDemand(0, [0, 1])
        ledger = QubitLedger(network)
        ledger.reserve(2, 2)
        ledger.reserve(3, 2)
        ledger.reserve(4, 2)
        ledger.reserve(5, 2)
        star = MultipartiteRouter().route_demand(
            network, demand, link, swap, ledger
        )
        assert star is None

"""Property-based tests for the routing layer (hypothesis + networkx oracle).

Invariants checked across randomly generated networks and demand sets:

* no router ever over-allocates a switch's qubits;
* Algorithm 1 agrees with a networkx shortest-path oracle under the
  log-transformed metric;
* flow-like graph rates are probabilities and improve monotonically with
  extra width;
* admitted flows only use edges that exist.
"""

import math

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import generate_demands
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.alg1_largest_rate import largest_entanglement_rate_path
from repro.routing.baselines import B1Router, QCastNRouter, QCastRouter
from repro.routing.nfusion import AlgNFusion
from repro.utils.rng import ensure_rng

ROUTER_FACTORIES = [
    AlgNFusion,
    QCastRouter,
    QCastNRouter,
    B1Router,
]


def build_instance(seed, num_switches=16, num_users=4, num_states=5,
                   capacity=8, degree=4.0):
    rng = ensure_rng(seed)
    network = build_network(
        NetworkConfig(
            num_switches=num_switches,
            num_users=num_users,
            qubit_capacity=capacity,
            average_degree=degree,
        ),
        rng,
    )
    demands = generate_demands(network, num_states, rng)
    return network, demands


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    p=st.floats(min_value=0.05, max_value=0.95),
    q=st.floats(min_value=0.1, max_value=1.0),
    router_index=st.integers(min_value=0, max_value=len(ROUTER_FACTORIES) - 1),
)
def test_no_router_overallocates(seed, p, q, router_index):
    network, demands = build_instance(seed)
    router = ROUTER_FACTORIES[router_index]()
    result = router.route(network, demands, LinkModel(fixed_p=p), SwapModel(q=q))
    usage = result.plan.qubits_used()
    for switch in network.switches():
        assert usage.get(switch, 0) <= network.qubit_capacity(switch)
    for flow in result.plan.flows():
        for u, v in flow.edges():
            assert network.has_edge(u, v)
        rate = flow.entanglement_rate(
            network, LinkModel(fixed_p=p), SwapModel(q=q)
        )
        assert 0.0 <= rate <= 1.0


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    p=st.floats(min_value=0.05, max_value=0.95),
    q=st.floats(min_value=0.05, max_value=1.0),
)
def test_alg1_matches_networkx_oracle(seed, p, q):
    """Maximising prod(p_e) * q^(hops-1) equals minimising
    sum(-log p_e - log q) with a terminal correction — solvable by
    networkx Dijkstra on a transformed weight."""
    network, demands = build_instance(seed, num_states=1)
    demand = demands[0]
    link, swap = LinkModel(fixed_p=p), SwapModel(q=q)
    found = largest_entanglement_rate_path(
        network, link, swap, demand.source, demand.destination, width=1
    )

    graph = nx.Graph()
    users = set(network.users())
    for edge in network.edges():
        # Users may not relay: drop user-user edges (none exist) and give
        # user-incident edges the same weight; relaying through users is
        # prevented by node filtering below.
        graph.add_edge(edge.u, edge.v, weight=-math.log(p) - math.log(q) if q > 0 else math.inf)
    # Remove other users so paths cannot relay through them.
    for user in users - {demand.source, demand.destination}:
        graph.remove_node(user)
    try:
        length = nx.dijkstra_path_length(
            graph, demand.source, demand.destination
        )
        # Each edge contributed -log p - log q; endpoints pay no q, and a
        # path of k edges has k-1 intermediates, so add back one log q.
        oracle_rate = math.exp(-length) / q if q > 0 else 0.0
    except nx.NetworkXNoPath:
        oracle_rate = None

    if oracle_rate is None:
        assert found is None
    else:
        assert found is not None
        assert found[1] == pytest.approx(oracle_rate, rel=1e-6)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    p=st.floats(min_value=0.05, max_value=0.9),
)
def test_total_rate_bounded_by_demand_count(seed, p):
    network, demands = build_instance(seed)
    result = AlgNFusion().route(
        network, demands, LinkModel(fixed_p=p), SwapModel(q=0.9)
    )
    assert 0.0 <= result.total_rate <= len(demands)
    assert result.num_routed == len(result.demand_rates)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_more_capacity_never_hurts_much(seed):
    """Doubling switch capacity should not reduce ALG-N-FUSION's rate
    beyond greedy noise (5%)."""
    link, swap = LinkModel(fixed_p=0.3), SwapModel(q=0.9)
    small_net, demands = build_instance(seed, capacity=6)
    big_net, big_demands = build_instance(seed, capacity=12)
    small_rate = AlgNFusion().route(small_net, demands, link, swap).total_rate
    big_rate = AlgNFusion().route(big_net, big_demands, link, swap).total_rate
    assert big_rate >= small_rate * 0.95 - 1e-9

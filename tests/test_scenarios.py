"""Tests for the scenario-spec layer: grammar round-trips, presets,
setting derivation, registry-backed quick scaling, cache identity and
the topology-compare sweep's execution-plan invariance."""

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentSetting
from repro.experiments.runner import run_settings
from repro.experiments.scenarios import (
    PAPER_DEFAULT,
    SCENARIO_PRESETS,
    ScenarioSpec,
    ScenarioSpecError,
    as_scenario,
    as_setting,
    parse_scenario,
    parse_scenario_names,
    scenario_presets,
)
from repro.experiments.topology_compare import topology_compare
from repro.network.builder import NetworkConfig, build_network
from repro.network.registry import topology_keys
from repro.routing.registry import RouterSpec


class TestScenarioGrammar:
    def test_parse_issue_example(self):
        spec = parse_scenario("aiello:switches=100,states=20,q=0.85")
        assert spec.topology == "aiello"
        assert spec.num_switches == 100
        assert spec.num_states == 20
        assert spec.swap_q == 0.85

    @pytest.mark.parametrize(
        "text",
        [
            "waxman",
            "grid:switches=64,users=8",
            "barabasi_albert:degree=6.0,alpha=0.0002",
            "erdos_renyi:p=0.3,q=0.5,states=10",
            "ring:switches=12,user_links=2",
            "random_geometric:area=5000.0,qubits=8",
            "waxman:p=none",
        ],
    )
    def test_round_trip(self, text):
        spec = parse_scenario(text)
        assert ScenarioSpec.from_string(spec.to_string()) == spec

    def test_to_string_omits_defaults(self):
        assert ScenarioSpec().to_string() == "waxman"
        assert parse_scenario("aiello:switches=100").to_string() == "aiello"

    def test_topology_normalizes_aliases_and_dashes(self):
        assert parse_scenario("watts").topology == "watts_strogatz"
        assert parse_scenario("watts-strogatz") == parse_scenario(
            "watts_strogatz"
        )
        assert parse_scenario("ba") == parse_scenario("barabasi_albert")

    def test_unknown_topology_names_supported_keys(self):
        with pytest.raises(ValueError) as err:
            parse_scenario("mystery")
        for key in topology_keys():
            assert key in str(err.value)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "waxman:bogus=3",
            "waxman:states",
            "waxman:states=",
            "waxman:states=abc",
            "waxman:states=20,states=30",
            "waxman:switches=12.5",
            "waxman:q=none",
        ],
    )
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(ScenarioSpecError):
            parse_scenario(text)

    def test_float_params_coerce_from_ints(self):
        assert parse_scenario("waxman:degree=6").average_degree == 6.0
        assert parse_scenario("waxman:q=1").swap_q == 1.0

    def test_as_scenario_coercions(self):
        spec = ScenarioSpec(topology="grid")
        assert as_scenario(spec) is spec
        assert as_scenario("grid") == spec
        with pytest.raises(ScenarioSpecError):
            as_scenario(42)

    def test_parse_scenario_names_continuation(self):
        names = parse_scenario_names("grid:switches=64,users=8,paper-ring")
        assert names == ["grid:switches=64,users=8", "paper-ring"]

    def test_parse_scenario_names_rejects_leading_parameter(self):
        with pytest.raises(ScenarioSpecError):
            parse_scenario_names("switches=64,grid")

    def test_parse_scenario_names_validates_members(self):
        # Unknown topologies surface the registry's ValueError, which
        # argparse_type renders as a normal usage error.
        with pytest.raises(ValueError):
            parse_scenario_names("grid,mystery")


class TestPresets:
    def test_paper_default_is_the_paper_scenario(self):
        assert parse_scenario("paper-default") == PAPER_DEFAULT
        assert PAPER_DEFAULT == ScenarioSpec()

    def test_every_preset_parses_and_builds(self):
        for name in scenario_presets():
            spec = parse_scenario(name)
            network = build_network(spec.network_config(), rng=7)
            assert network.is_connected()

    def test_presets_cover_every_topology_family(self):
        covered = {parse_scenario(name).topology for name in SCENARIO_PRESETS}
        assert covered == set(topology_keys())


class TestSettingDerivation:
    def test_paper_default_setting_equals_hand_built(self):
        assert PAPER_DEFAULT.setting() == ExperimentSetting()

    def test_setting_scenario_round_trip(self):
        spec = parse_scenario("grid:switches=64,users=8,states=5,q=0.7")
        assert spec.setting().scenario() == spec

    def test_setting_averaging_overrides(self):
        setting = PAPER_DEFAULT.setting(num_networks=3, seed=11)
        assert setting.num_networks == 3
        assert setting.seed == 11
        assert setting.scenario() == PAPER_DEFAULT

    def test_as_setting_coercions(self):
        setting = ExperimentSetting()
        assert as_setting(setting) is setting
        assert as_setting("paper-default") == setting
        assert as_setting(PAPER_DEFAULT) == setting

    def test_generator_alias_settings_share_identity(self):
        via_alias = ExperimentSetting(
            network=NetworkConfig(generator="watts")
        )
        assert via_alias.scenario() == parse_scenario("watts_strogatz")


class TestQuickScaling:
    def test_grid_stays_square_after_halving(self):
        quick = as_setting("grid").scaled_for_quick_run()
        side = int(quick.network.num_switches ** 0.5)
        assert side * side == quick.network.num_switches
        assert quick.network.num_switches == 49

    def test_non_grid_scaling_unchanged(self):
        quick = ExperimentSetting().scaled_for_quick_run()
        assert quick.network.num_switches == 50
        assert quick.num_networks == 2


class TestCacheIdentity:
    def test_scenario_and_hand_built_settings_share_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        router = RouterSpec.create("q-cast")
        hand_built = ExperimentSetting(
            network=NetworkConfig(generator="grid", num_switches=64),
            num_states=5,
        )
        via_spec = as_setting("grid:switches=64,states=5")
        assert cache.key_for(hand_built, router) == cache.key_for(
            via_spec, router
        )

    def test_scenario_parameters_change_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        router = RouterSpec.create("q-cast")
        keys = {
            cache.key_for(as_setting(text), router)
            for text in (
                "waxman",
                "waxman:states=21",
                "waxman:q=0.8",
                "grid",
                "ring",
            )
        }
        assert len(keys) == 5


TINY_SCENARIOS = (
    "waxman:switches=20,users=4,states=3,p=0.5",
    "grid:switches=16,users=4,states=3,p=0.5",
    "ring:switches=12,users=4,states=3,p=0.5",
    "erdos_renyi:switches=20,users=4,states=3,p=0.5",
)


class TestScenarioSweeps:
    def test_run_settings_accepts_scenario_strings(self):
        text = TINY_SCENARIOS[1]
        via_string = run_settings([text], routers=["q-cast"])
        via_setting = run_settings([as_setting(text)], routers=["q-cast"])
        assert via_string == via_setting
        assert "Q-CAST" in via_string[0]

    def test_topology_compare_covers_every_family_and_router(self):
        sweep = topology_compare(
            quick=True,
            scenarios=list(TINY_SCENARIOS),
            routers=["alg-n-fusion", "q-cast"],
        )
        assert sweep.x_values == list(TINY_SCENARIOS)
        assert set(sweep.series) == {"ALG-N-FUSION", "Q-CAST"}
        for series in sweep.series.values():
            assert len(series) == len(TINY_SCENARIOS)

    def test_topology_compare_worker_and_shard_invariance(self, tmp_path):
        kwargs = dict(
            quick=True,
            scenarios=list(TINY_SCENARIOS),
            routers=["alg-n-fusion", "q-cast"],
        )
        sequential = topology_compare(workers=1, **kwargs)
        parallel = topology_compare(workers=2, **kwargs)
        assert sequential.to_text() == parallel.to_text()

        cache = ResultCache(tmp_path)
        topology_compare(workers=1, cache=cache, shard=(0, 2), **kwargs)
        merged = topology_compare(
            workers=1, cache=cache, shard=(1, 2), **kwargs
        )
        assert merged.to_text() == sequential.to_text()


class TestScenarioCli:
    def test_scenarios_listing(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "paper-default" in out
        assert "barabasi_albert" in out

    def test_topology_compare_cli(self, capsys):
        from repro.experiments.__main__ import main

        assert main([
            "topology-compare",
            "--scenarios", TINY_SCENARIOS[2],
            "--routers", "q-cast",
        ]) == 0
        out = capsys.readouterr().out
        assert TINY_SCENARIOS[2] in out
        assert "Q-CAST" in out

    def test_scenario_flag_on_grid_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main([
            "fig8a", "--scenario", TINY_SCENARIOS[1],
            "--routers", "q-cast",
        ]) == 0
        assert "Q-CAST" in capsys.readouterr().out

    def test_scenarios_flag_loops_grid_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main([
            "fig8a",
            "--scenarios", f"{TINY_SCENARIOS[1]},{TINY_SCENARIOS[2]}",
            "--routers", "q-cast",
        ]) == 0
        out = capsys.readouterr().out
        assert out.count("Figure 8a") == 2
        assert f"--- scenario: {TINY_SCENARIOS[2]} ---" in out

    def test_unknown_scenario_is_a_usage_error(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig8a", "--scenario", "mystery"])

    def test_scenario_and_scenarios_are_mutually_exclusive(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main([
                "fig8a", "--scenario", "grid", "--scenarios", "grid,ring",
            ])

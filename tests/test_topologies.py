"""Unit tests for topology generators and the network builder."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.builder import NetworkConfig, build_network
from repro.network.node import NodeKind
from repro.network.registry import (
    TopologyKeyError,
    normalize_topology,
    quick_switch_count,
    topology_keys,
)
from repro.network.topology import (
    aiello_power_law_network,
    barabasi_albert_network,
    connect_components,
    erdos_renyi_network,
    grid_network,
    random_geometric_network,
    ring_network,
    watts_strogatz_network,
    waxman_network,
)
from repro.utils.rng import ensure_rng

GENERATORS = {
    "waxman": waxman_network,
    "watts_strogatz": watts_strogatz_network,
    "aiello": aiello_power_law_network,
    "erdos_renyi": erdos_renyi_network,
    "barabasi_albert": barabasi_albert_network,
    "random_geometric": random_geometric_network,
    "ring": ring_network,
}


@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestRandomGenerators:
    def test_connected(self, name):
        net = GENERATORS[name](num_switches=40, rng=ensure_rng(1))
        assert net.is_connected()

    def test_node_counts(self, name):
        net = GENERATORS[name](num_switches=40, num_users=6, rng=ensure_rng(2))
        assert len(net.switches()) == 40
        assert len(net.users()) == 6

    def test_users_only_touch_switches(self, name):
        net = GENERATORS[name](num_switches=40, rng=ensure_rng(3))
        for user in net.users():
            for nbr in net.neighbors(user):
                assert net.node(nbr).is_switch

    def test_qubit_capacity_applied(self, name):
        net = GENERATORS[name](num_switches=30, qubit_capacity=7, rng=ensure_rng(4))
        for s in net.switches():
            assert net.qubit_capacity(s) == 7
        for u in net.users():
            assert net.qubit_capacity(u) is None

    def test_deterministic_with_seed(self, name):
        a = GENERATORS[name](num_switches=30, rng=ensure_rng(5))
        b = GENERATORS[name](num_switches=30, rng=ensure_rng(5))
        assert a.edge_keys() == b.edge_keys()

    def test_user_links_respected(self, name):
        net = GENERATORS[name](num_switches=30, user_links=3, rng=ensure_rng(6))
        for user in net.users():
            assert net.degree(user) == 3


class TestDegreeTargets:
    @pytest.mark.parametrize("target", [5.0, 10.0, 15.0])
    def test_waxman_average_degree(self, target):
        net = waxman_network(
            num_switches=100, average_degree=target, rng=ensure_rng(7)
        )
        measured = net.average_degree(NodeKind.SWITCH)
        assert measured == pytest.approx(target, rel=0.35)

    def test_erdos_renyi_average_degree(self):
        net = erdos_renyi_network(
            num_switches=100, average_degree=8.0, rng=ensure_rng(8)
        )
        assert net.average_degree(NodeKind.SWITCH) == pytest.approx(8.0, rel=0.35)

    def test_aiello_has_heavy_tail(self):
        net = aiello_power_law_network(
            num_switches=150, average_degree=8.0, rng=ensure_rng(9)
        )
        degrees = sorted(net.degree(s) for s in net.switches())
        # A scale-free sample should have hubs well above the mean.
        assert degrees[-1] > 2.5 * (sum(degrees) / len(degrees))


class TestRegularTopologies:
    def test_grid_structure(self):
        net = grid_network(side=4, num_users=2, rng=ensure_rng(10))
        assert len(net.switches()) == 16
        # Interior grid switches have degree 4 (plus possible user links).
        switch_degrees = [
            sum(1 for n in net.neighbors(s) if net.node(n).is_switch)
            for s in net.switches()
        ]
        assert max(switch_degrees) == 4
        assert min(switch_degrees) == 2

    def test_grid_rejects_tiny_side(self):
        with pytest.raises(ConfigurationError):
            grid_network(side=1)

    def test_ring_structure(self):
        net = ring_network(num_switches=8, num_users=2, rng=ensure_rng(11))
        for s in net.switches():
            switch_neighbors = [
                n for n in net.neighbors(s) if net.node(n).is_switch
            ]
            assert len(switch_neighbors) == 2

    def test_connect_components_repairs(self):
        net = ring_network(num_switches=6, num_users=2, rng=ensure_rng(12))
        switches = net.switches()
        net.remove_edge(switches[0], switches[1])
        net.remove_edge(switches[3], switches[4])
        if not net.is_connected():
            added = connect_components(net)
            assert added >= 1
        assert net.is_connected()


class TestBuilder:
    @pytest.mark.parametrize(
        "generator",
        [
            "waxman", "watts_strogatz", "aiello", "grid", "ring",
            "erdos_renyi", "barabasi_albert", "random_geometric",
        ],
    )
    def test_build_network_dispatch(self, generator):
        config = NetworkConfig(generator=generator, num_switches=25, num_users=4)
        net = build_network(config, ensure_rng(13))
        assert net.is_connected()
        assert len(net.users()) == 4

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("watts", "watts_strogatz"),
            ("power_law", "aiello"),
            ("er", "erdos_renyi"),
            ("ba", "barabasi_albert"),
            ("rgg", "random_geometric"),
            ("Watts-Strogatz", "watts_strogatz"),
        ],
    )
    def test_aliases_build_the_canonical_family(self, alias, canonical):
        assert normalize_topology(alias) == canonical
        via_alias = build_network(
            NetworkConfig(generator=alias, num_switches=20, num_users=4),
            ensure_rng(21),
        )
        direct = build_network(
            NetworkConfig(generator=canonical, num_switches=20, num_users=4),
            ensure_rng(21),
        )
        assert via_alias.edge_keys() == direct.edge_keys()

    def test_unknown_generator(self):
        with pytest.raises(ConfigurationError):
            build_network(NetworkConfig(generator="mystery"), ensure_rng(0))

    def test_unknown_generator_is_value_error_naming_keys(self):
        with pytest.raises(ValueError) as err:
            build_network(NetworkConfig(generator="mystery"), ensure_rng(0))
        assert isinstance(err.value, TopologyKeyError)
        for key in topology_keys():
            assert key in str(err.value)

    def test_registered_keys_are_complete(self):
        assert set(topology_keys()) == {
            "waxman", "watts_strogatz", "aiello", "barabasi_albert",
            "random_geometric", "grid", "ring", "erdos_renyi",
        }

    def test_quick_switch_count_squares_grids_only(self):
        assert quick_switch_count("grid", 50) == 49
        assert quick_switch_count("grid", 30) == 25
        assert quick_switch_count("waxman", 50) == 50
        assert quick_switch_count("ring", 31) == 31

    def test_reregistering_a_key_or_alias_is_rejected(self):
        # Replacing a builder would silently poison warm result caches
        # (scenario fingerprints identify the topology by key alone).
        from repro.network.registry import register_topology

        def impostor(config, rng):  # pragma: no cover - never called
            raise AssertionError

        with pytest.raises(TopologyKeyError):
            register_topology("waxman")(impostor)
        with pytest.raises(TopologyKeyError):
            register_topology("my-family", aliases=("er",))(impostor)
        with pytest.raises(TopologyKeyError):
            register_topology("my-family", aliases=("waxman",))(impostor)
        # The failed registrations must not have leaked into the registry.
        assert "my-family" not in topology_keys()
        build_network(
            NetworkConfig(generator="waxman", num_switches=20, num_users=4),
            ensure_rng(3),
        )

    def test_with_updates(self):
        config = NetworkConfig().with_updates(num_switches=7)
        assert config.num_switches == 7
        assert NetworkConfig().num_switches == 100

    def test_invalid_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            waxman_network(num_switches=10, average_degree=10.0, rng=ensure_rng(1))

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ConfigurationError):
            aiello_power_law_network(num_switches=10, gamma=0.5, rng=ensure_rng(1))

    def test_invalid_rewire_rejected(self):
        with pytest.raises(ConfigurationError):
            watts_strogatz_network(
                num_switches=10, rewire_probability=1.5, rng=ensure_rng(1)
            )

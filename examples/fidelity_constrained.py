#!/usr/bin/env python3
"""Fidelity-constrained routing and the distillation trade-off.

The paper maximises the entanglement *rate*; applications also need
*quality*.  This example shows the two quality knobs built on top of the
paper's machinery:

1. **Hop bounds from fidelity** — under the Werner product model, an
   end-to-end fidelity floor translates into a maximum hop count; the
   constrained router then only admits short-enough paths (rate drops,
   worst-case fidelity rises).
2. **Distillation instead of multiplexing** — a width-w channel can spend
   its parallel links on BBPSSW pumping rather than redundancy, trading
   delivery probability for fidelity.

Run:  python examples/fidelity_constrained.py
"""

from repro import (
    AlgNFusion,
    FidelityModel,
    LinkModel,
    NetworkConfig,
    SwapModel,
    build_network,
    generate_demands,
)
from repro.quantum.distillation import channel_rate_fidelity_tradeoff
from repro.utils.rng import ensure_rng
from repro.utils.tables import AsciiTable


def constrained_routing() -> None:
    print("=== routing under an end-to-end fidelity floor ===")
    rng = ensure_rng(9)
    network = build_network(NetworkConfig(num_switches=50, num_users=8), rng)
    demands = generate_demands(network, 10, rng)
    link, swap = LinkModel(fixed_p=0.5), SwapModel(q=0.9)
    model = FidelityModel(link_fidelity=0.97, fusion_fidelity=0.99)

    table = AsciiTable(
        ["min fidelity", "max hops", "rate", "routed", "worst-case F"]
    )
    for floor in (0.0, 0.80, 0.88, 0.92):
        if floor == 0.0:
            router = AlgNFusion()
            cap = "-"
        else:
            router = AlgNFusion().with_fidelity_constraint(model, floor)
            cap = router.max_hops
        result = router.route(network, demands, link, swap)
        worst = min(
            (
                model.flow_fidelity_bounds(flow)[0]
                for flow in result.plan.flows()
            ),
            default=float("nan"),
        )
        table.add_row(
            [floor or "none", cap, result.total_rate, result.num_routed, worst]
        )
    print(table.render())
    print("tighter floors -> shorter paths -> lower rate, higher fidelity\n")


def distillation_tradeoff() -> None:
    print("=== distillation vs multiplexing on one width-8 channel ===")
    table = AsciiTable(
        ["pumping rounds", "pairs needed", "delivery prob", "fidelity"]
    )
    options = channel_rate_fidelity_tradeoff(
        link_success=0.5, width=8, link_fidelity=0.85, max_rounds=3
    )
    for rounds, prob, fidelity in options:
        table.add_row([rounds, 2**rounds, prob, fidelity])
    print(table.render())
    print(
        "each pumping round halves the usable pair budget but pushes the "
        "fidelity towards 1"
    )


def main() -> None:
    constrained_routing()
    distillation_tradeoff()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Operational view: time slots, waiting times and online arrivals.

Two extensions beyond the paper's one-shot evaluation:

1. **Time-slotted throughput** — the routed plan is executed over many
   slots; per-slot delivery and waiting time (slots until a pair first
   shares a state) are measured and compared with the analytic rate.
2. **Online scheduling** — demands arrive as a Poisson process; each
   slot's batch is routed on the fly and the service fraction compared
   between ALG-N-FUSION and the classic-swapping Q-CAST.

Run:  python examples/online_operation.py
"""

from repro import (
    AlgNFusion,
    LinkModel,
    NetworkConfig,
    QCastRouter,
    SwapModel,
    build_network,
    generate_demands,
)
from repro.routing.scheduler import OnlineScheduler
from repro.simulation.timeline import TimeSlottedSimulator
from repro.utils.rng import ensure_rng
from repro.utils.tables import AsciiTable


def timeline_demo(network, link, swap) -> None:
    demands = generate_demands(network, 8, ensure_rng(2))
    result = AlgNFusion().route(network, demands, link, swap)
    simulator = TimeSlottedSimulator(network, link, swap, ensure_rng(3))
    run = simulator.run(result.plan, num_slots=2000)
    print("=== time-slotted execution (2000 slots) ===")
    print(f"analytic rate     : {result.total_rate:.3f} states/slot")
    print(f"measured          : {run.throughput_per_slot:.3f} states/slot")
    mean_wait = run.mean_waiting_time()
    print(f"mean waiting time : {mean_wait:.1f} slots to first state\n"
          if mean_wait else "no demand ever succeeded\n")


def online_demo(network, link, swap) -> None:
    print("=== online arrivals (Poisson, 30 slots) ===")
    table = AsciiTable(
        ["router", "arrived", "served", "dropped", "E[states]/slot"]
    )
    for router in (AlgNFusion(), QCastRouter()):
        scheduler = OnlineScheduler(router=router, arrival_rate=2.0)
        outcome = scheduler.run(
            network, num_slots=30, link_model=link, swap_model=swap,
            rng=ensure_rng(4),
        )
        table.add_row(
            [router.name, outcome.arrived, outcome.served, outcome.dropped,
             outcome.mean_throughput_per_slot]
        )
    print(table.render())
    print(
        "\nSame arrivals, same network: the n-fusion router converts more "
        "of the offered load into delivered entanglement."
    )


def main() -> None:
    network = build_network(NetworkConfig(num_switches=40, num_users=8),
                            ensure_rng(1))
    link, swap = LinkModel(fixed_p=0.45), SwapModel(q=0.9)
    timeline_demo(network, link, swap)
    online_demo(network, link, swap)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Distribute a GHZ state among several users via star fusion.

The paper routes *pairwise* states; its machinery extends naturally to
k-user GHZ distribution (the future-work direction it motivates): every
user builds an entanglement path to a common fusion center, which then
performs a single k-GHZ measurement.  This example routes 3- and 4-user
GHZ demands over a random network and verifies the fusion logic at the
exact stabilizer level for the chosen star.

Run:  python examples/multipartite_ghz.py
"""

import numpy as np

from repro import (
    LinkModel,
    NetworkConfig,
    StabilizerTableau,
    SwapModel,
    build_network,
)
from repro.quantum.fusion import ghz_measurement, prepare_bell_pair
from repro.routing.multipartite import MultipartiteDemand, MultipartiteRouter
from repro.utils.rng import ensure_rng


def route_stars() -> None:
    network = build_network(
        NetworkConfig(num_switches=40, num_users=6), ensure_rng(11)
    )
    link, swap = LinkModel(fixed_p=0.6), SwapModel(q=0.9)
    users = network.users()
    router = MultipartiteRouter()
    demands = [
        MultipartiteDemand(0, users[:3]),
        MultipartiteDemand(1, users[3:6]),
    ]
    print("=== routing multipartite GHZ demands ===")
    routes = router.route_all(network, demands, link, swap)
    for demand in demands:
        star = routes.get(demand.demand_id)
        if star is None:
            print(f"demand {demand.demand_id}: no feasible star")
            continue
        print(
            f"demand {demand.demand_id}: GHZ_{demand.size} for users "
            f"{demand.users} via center switch {star.center}, "
            f"rate {star.rate:.3f}"
        )
        for user, nodes in sorted(star.arms.items()):
            print(f"  arm {user}: {' - '.join(map(str, nodes))}")
    print()


def verify_star_fusion(k: int = 4) -> None:
    """Exact check: k Bell pairs + one k-GHZ measurement = GHZ_k."""
    print(f"=== stabilizer verification of a {k}-arm star ===")
    tableau = StabilizerTableau(2 * k, np.random.default_rng(5))
    center_qubits, user_qubits = [], []
    for i in range(k):
        prepare_bell_pair(tableau, 2 * i, 2 * i + 1)
        center_qubits.append(2 * i)
        user_qubits.append(2 * i + 1)
    outcomes = ghz_measurement(tableau, center_qubits)
    assert tableau.is_ghz_up_to_pauli(user_qubits)
    print(
        f"center measured {outcomes}; user qubits {user_qubits} share a "
        f"GHZ_{k} state (verified exactly)"
    )


def main() -> None:
    route_stars()
    verify_star_fusion()


if __name__ == "__main__":
    main()

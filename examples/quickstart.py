#!/usr/bin/env python3
"""Quickstart: route entanglement demands over a random quantum network.

Builds the paper's default Waxman network (scaled down for speed), samples
demands, runs ALG-N-FUSION and all three baselines, prints the resulting
entanglement rates and validates the analytic rate of the winner against
the Phase III Monte Carlo simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    LinkModel,
    NetworkConfig,
    SwapModel,
    build_network,
    estimate_plan_rate,
    generate_demands,
    make_router,
)
from repro.utils.tables import AsciiTable


def main() -> None:
    config = NetworkConfig(num_switches=60, num_users=8)
    network = build_network(config, rng=7)
    demands = generate_demands(network, num_states=12, rng=8)
    link = LinkModel()          # p = e^{-1e-4 * length}
    swap = SwapModel(q=0.9)     # 90% fusion success

    print(f"network: {network}")
    print(f"demands: {len(demands)} states over {len(demands.pairs())} pairs\n")

    table = AsciiTable(["algorithm", "entanglement rate", "routed", "free qubits"])
    results = {}
    for key in ("alg-n-fusion", "q-cast", "q-cast-n", "b1"):
        router = make_router(key)
        result = router.route(network, demands, link, swap)
        results[result.algorithm] = result
        table.add_row(
            [result.algorithm, result.total_rate, result.num_routed,
             result.remaining_qubits]
        )
    print(table.render())

    best = results["ALG-N-FUSION"]
    estimate = estimate_plan_rate(
        network, best.plan, link, swap, trials=1000, rng=9
    )
    low, high = estimate.confidence_interval()
    print(
        f"\nMonte Carlo check (ALG-N-FUSION): analytic={best.total_rate:.3f}, "
        f"simulated={estimate.mean:.3f} (95% CI [{low:.3f}, {high:.3f}])"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compare routing algorithms across topology families (mini Figure 7).

Evaluates ALG-N-FUSION and the baselines on Waxman, Watts-Strogatz,
Aiello power-law and grid workloads of equal size, printing one row per
scenario.  Demonstrates the claim that n-fusion routing adapts to
general topologies — and the scenario-spec grammar that addresses each
workload as a single string (the `topology-compare` experiment runs the
full registry-wide version of this table through the sweep harness).

Run:  python examples/topology_comparison.py
"""

from repro import LinkModel, SwapModel, generate_demands
from repro.experiments import parse_scenario, standard_specs
from repro.network.builder import build_network
from repro.utils.rng import ensure_rng
from repro.utils.tables import AsciiTable

SCENARIOS = (
    "waxman:switches=49,users=8",
    "watts_strogatz:switches=49,users=8",
    "aiello:switches=49,users=8",
    "grid:switches=49,users=8",
)


def main() -> None:
    link, swap = LinkModel(), SwapModel(q=0.9)
    routers = [spec.build() for spec in standard_specs()]
    table = AsciiTable(["scenario", *[r.name for r in routers]])
    for text in SCENARIOS:
        scenario = parse_scenario(text)
        rng = ensure_rng(100)
        network = build_network(scenario.network_config(), rng)
        demands = generate_demands(network, 10, rng)
        rates = [
            router.route(network, demands, link, swap).total_rate
            for router in routers
        ]
        table.add_row([scenario.topology, *rates])
    print("entanglement rate by topology scenario (10 demanded states)\n")
    print(table.render())
    print(
        "\nALG-N-FUSION should lead on every row; the margin over Q-CAST "
        "is the n-fusion advantage.  Try the registry-wide version:\n"
        "  python -m repro.experiments topology-compare"
    )


if __name__ == "__main__":
    main()

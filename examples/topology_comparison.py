#!/usr/bin/env python3
"""Compare routing algorithms across topology families (mini Figure 7).

Evaluates ALG-N-FUSION and the baselines on Waxman, Watts-Strogatz,
Aiello power-law and grid networks of equal size, printing one row per
generator.  Demonstrates the claim that n-fusion routing adapts to general
topologies.

Run:  python examples/topology_comparison.py
"""

from repro import (
    LinkModel,
    NetworkConfig,
    SwapModel,
    build_network,
    generate_demands,
)
from repro.experiments import standard_specs
from repro.utils.rng import ensure_rng
from repro.utils.tables import AsciiTable

GENERATORS = ("waxman", "watts_strogatz", "aiello", "grid")


def main() -> None:
    link, swap = LinkModel(), SwapModel(q=0.9)
    routers = [spec.build() for spec in standard_specs()]
    table = AsciiTable(["generator", *[r.name for r in routers]])
    for generator in GENERATORS:
        rng = ensure_rng(100)
        network = build_network(
            NetworkConfig(generator=generator, num_switches=49, num_users=8),
            rng,
        )
        demands = generate_demands(network, 10, rng)
        rates = [
            router.route(network, demands, link, swap).total_rate
            for router in routers
        ]
        table.add_row([generator, *rates])
    print("entanglement rate by topology generator (10 demanded states)\n")
    print(table.render())
    print(
        "\nALG-N-FUSION should lead on every row; the margin over Q-CAST "
        "is the n-fusion advantage."
    )


if __name__ == "__main__":
    main()

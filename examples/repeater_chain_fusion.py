#!/usr/bin/env python3
"""Exact quantum-level demo: classic swapping vs n-fusion at a hub.

This example works at the stabilizer level (no probabilities) to show the
two operations the routing layer reasons about:

1. A four-segment repeater chain connected end-to-end by three successive
   Bell-state measurements (classic 2-fusion).
2. A hub switch holding one qubit of each of four Bell pairs performing a
   single 4-GHZ measurement, leaving the four remote processors in a GHZ
   state — the paper's Figure 2.

Both are verified against the exact Aaronson-Gottesman simulator.

Run:  python examples/repeater_chain_fusion.py
"""

import numpy as np

from repro import EntanglementTracker, StabilizerTableau
from repro.quantum.fusion import (
    bell_state_measurement,
    ghz_measurement,
    prepare_bell_pair,
)


def repeater_chain() -> None:
    print("=== classic swapping along a repeater chain ===")
    # Qubits 2i / 2i+1 form link i of the chain; odd/even neighbours sit
    # in the same repeater node.
    segments = 4
    tableau = StabilizerTableau(2 * segments, np.random.default_rng(1))
    tracker = EntanglementTracker()
    for i in range(segments):
        prepare_bell_pair(tableau, 2 * i, 2 * i + 1)
        tracker.create_bell_pair(2 * i, 2 * i + 1)
        print(f"  link {i}: Bell pair on qubits ({2 * i}, {2 * i + 1})")
    for i in range(segments - 1):
        a, b = 2 * i + 1, 2 * i + 2
        outcomes = bell_state_measurement(tableau, a, b)
        tracker.fuse([a, b])
        print(f"  repeater {i}: BSM on ({a}, {b}) -> outcomes {outcomes}")
    end_a, end_b = 0, 2 * segments - 1
    assert tracker.same_group(end_a, end_b)
    assert tableau.is_bell_pair_up_to_pauli(end_a, end_b)
    print(f"  end-to-end qubits ({end_a}, {end_b}) share a Bell pair: verified\n")


def hub_fusion() -> None:
    print("=== 4-fusion at a hub switch (paper Figure 2) ===")
    pairs = 4
    tableau = StabilizerTableau(2 * pairs, np.random.default_rng(2))
    tracker = EntanglementTracker()
    hub_qubits, remote_qubits = [], []
    for i in range(pairs):
        hub, remote = 2 * i, 2 * i + 1
        prepare_bell_pair(tableau, hub, remote)
        tracker.create_bell_pair(hub, remote)
        hub_qubits.append(hub)
        remote_qubits.append(remote)
        print(f"  link {i}: hub qubit {hub} <-> remote processor qubit {remote}")
    outcomes = ghz_measurement(tableau, hub_qubits)
    tracker.fuse(hub_qubits)
    print(f"  hub: single 4-GHZ measurement -> outcomes {outcomes}")
    assert tableau.is_ghz_up_to_pauli(remote_qubits)
    group = tracker.group_of(remote_qubits[0])
    print(
        f"  remote processors {remote_qubits} now share a "
        f"{group.size}-GHZ state: verified"
    )
    print(
        "  (one joint measurement replaced three pairwise swaps — the "
        "flexibility ALG-N-FUSION exploits)"
    )


def main() -> None:
    repeater_chain()
    hub_fusion()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Sweep the quantum parameters p and q (mini Figure 8).

Shows where n-fusion pays off most: the advantage of ALG-N-FUSION over
classic swapping grows as the link success probability p shrinks — the
regime the paper argues is physically realistic.

Run:  python examples/parameter_sensitivity.py
"""

from repro import (
    AlgNFusion,
    LinkModel,
    NetworkConfig,
    QCastRouter,
    SwapModel,
    build_network,
    generate_demands,
)
from repro.utils.rng import ensure_rng
from repro.utils.tables import AsciiTable


def build_instance():
    rng = ensure_rng(55)
    network = build_network(NetworkConfig(num_switches=50, num_users=8), rng)
    demands = generate_demands(network, 10, rng)
    return network, demands


def sweep_p(network, demands) -> None:
    table = AsciiTable(["p", "ALG-N-FUSION", "Q-CAST", "advantage"])
    swap = SwapModel(q=0.9)
    for p in (0.1, 0.2, 0.3, 0.4):
        link = LinkModel(fixed_p=p)
        alg = AlgNFusion().route(network, demands, link, swap).total_rate
        qcast = QCastRouter().route(network, demands, link, swap).total_rate
        advantage = alg / qcast if qcast > 0 else float("inf")
        table.add_row([p, alg, qcast, f"{advantage:.1f}x"])
    print("entanglement rate vs link success probability p (q = 0.9)\n")
    print(table.render())


def sweep_q(network, demands) -> None:
    table = AsciiTable(["q", "ALG-N-FUSION", "Q-CAST", "advantage"])
    link = LinkModel(fixed_p=0.3)
    for q in (0.3, 0.5, 0.7, 0.9):
        swap = SwapModel(q=q)
        alg = AlgNFusion().route(network, demands, link, swap).total_rate
        qcast = QCastRouter().route(network, demands, link, swap).total_rate
        advantage = alg / qcast if qcast > 0 else float("inf")
        table.add_row([q, alg, qcast, f"{advantage:.1f}x"])
    print("\nentanglement rate vs swapping success probability q (p = 0.3)\n")
    print(table.render())


def main() -> None:
    network, demands = build_instance()
    sweep_p(network, demands)
    sweep_q(network, demands)
    print(
        "\nNote how the n-fusion advantage is largest at small p — wide "
        "channels and flow-like graphs compensate for lossy links."
    )


if __name__ == "__main__":
    main()

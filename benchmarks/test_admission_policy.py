"""Benchmark: admission-policy ablation (DESIGN.md decision #1).

Compares the default marginal-efficiency admission against the paper's
literal widest-first sweep across the headline settings, documenting why
the efficiency policy is the default.
"""

from repro.experiments.config import is_full_run
from repro.experiments.runner import run_setting
from repro.experiments.tables import headline_settings
from repro.routing.nfusion import AlgNFusion
from repro.utils.tables import AsciiTable

from conftest import report

LABELS = ("default", "p=0.1", "p=0.2", "q=0.5")


def run_ablation():
    quick = not is_full_run()
    table = AsciiTable(["setting", "efficiency", "widest-first", "ratio"])
    ratios = []
    for label, setting in zip(LABELS, headline_settings(quick)):
        rates = run_setting(
            setting,
            routers=[
                AlgNFusion(name="EFF"),
                AlgNFusion(admission_policy="widest_first", name="WF"),
            ],
        )
        efficiency = rates["EFF"]
        widest = rates["WF"]
        ratio = efficiency / widest if widest > 0 else float("inf")
        ratios.append(ratio)
        table.add_row([label, efficiency, widest, f"{ratio:.2f}x"])
    text = (
        "Admission-policy ablation: marginal-efficiency (default) vs the "
        "paper's literal widest-first sweep\n" + table.render()
    )
    return text, ratios


def test_admission_policy(benchmark):
    text, ratios = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report("admission_policy", text)
    # Efficiency admission should win on aggregate.
    assert sum(ratios) / len(ratios) > 1.0

"""Benchmark: regenerate Figure 9d (average degree sweep)."""

from repro.experiments import fig9d_degree

from conftest import report


def test_fig9d_degree(benchmark):
    """Runs the sweep once and reports the series the paper plots."""
    sweep = benchmark.pedantic(fig9d_degree, rounds=1, iterations=1)
    report("fig9d_degree", sweep.to_text())
    assert sweep.series_for("ALG-N-FUSION")

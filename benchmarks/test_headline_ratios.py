"""Benchmark: recompute the paper's Section V-C-1 headline ratios."""

from repro.experiments import headline_ratios

from conftest import report


def test_headline_ratios(benchmark):
    """Paper-vs-measured improvement ratios over Q-CAST and within the
    n-fusion algorithms."""
    ratios = benchmark.pedantic(headline_ratios, rounds=1, iterations=1)
    report("headline_ratios", ratios.to_text())
    # The qualitative claims: n-fusion beats classic swapping, and
    # ALG-N-FUSION is the best n-fusion algorithm.
    assert ratios.best_improvement_over_qcast["ALG-N-FUSION"] > 1.0
    assert ratios.alg_over_b1 > 0.0

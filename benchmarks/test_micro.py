"""Micro-benchmarks for the library's hot paths.

These give pytest-benchmark real statistics (many rounds) for the kernels
the experiment harness leans on: stabilizer fusion, Algorithm 1 search,
flow-rate evaluation and a full router invocation.
"""

import numpy as np

from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import generate_demands
from repro.quantum.fusion import ghz_measurement, prepare_bell_pair
from repro.quantum.noise import LinkModel, SwapModel
from repro.quantum.stabilizer import StabilizerTableau
from repro.routing.alg1_largest_rate import largest_entanglement_rate_path
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.nfusion import AlgNFusion
from repro.simulation.engine import EntanglementProcessSimulator
from repro.utils.rng import ensure_rng

LINK = LinkModel(fixed_p=0.4)
SWAP = SwapModel(q=0.9)


def _instance(num_switches=60, num_states=10, seed=31):
    rng = ensure_rng(seed)
    network = build_network(NetworkConfig(num_switches=num_switches), rng)
    demands = generate_demands(network, num_states, rng)
    return network, demands


def test_stabilizer_star_fusion(benchmark):
    """GHZ-measure 5 switch qubits out of 5 Bell pairs (10-qubit tableau)."""

    def run():
        t = StabilizerTableau(10, np.random.default_rng(1))
        for i in range(5):
            prepare_bell_pair(t, 2 * i, 2 * i + 1)
        ghz_measurement(t, [0, 2, 4, 6, 8])
        return t

    benchmark(run)


def test_alg1_dijkstra(benchmark):
    network, demands = _instance()
    demand = demands[0]

    def run():
        return largest_entanglement_rate_path(
            network, LINK, SWAP, demand.source, demand.destination, width=2
        )

    result = benchmark(run)
    assert result is not None


def test_flow_rate_evaluation(benchmark):
    network, demands = _instance()
    result = AlgNFusion().route(network, demands, LINK, SWAP)
    flows = result.plan.flows()

    def run():
        return sum(f.entanglement_rate(network, LINK, SWAP) for f in flows)

    total = benchmark(run)
    assert total > 0


def test_full_router(benchmark):
    network, demands = _instance(num_switches=40, num_states=6)

    def run():
        return AlgNFusion().route(network, demands, LINK, SWAP)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.total_rate > 0


def test_monte_carlo_trials(benchmark):
    network, demands = _instance(num_switches=40, num_states=6)
    result = AlgNFusion().route(network, demands, LINK, SWAP)
    flows = result.plan.flows()
    sim = EntanglementProcessSimulator(network, LINK, SWAP, ensure_rng(2))

    def run():
        return sum(sim.flow_rate(f, trials=50) for f in flows)

    benchmark.pedantic(run, rounds=3, iterations=1)

"""Micro-benchmarks for the library's hot paths.

These give pytest-benchmark real statistics (many rounds) for the kernels
the experiment harness leans on: stabilizer fusion, Algorithm 1 search,
flow-rate evaluation and a full router invocation.  The Equation-1
evaluator comparison additionally persists a results table
(``benchmarks/results/eq1_micro.txt`` + JSON twin) recording where the
vectorized evaluator beats the scalar walk.
"""

import time

import numpy as np

from repro.experiments.regression import build_regression_instance
from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import generate_demands
from repro.network.graph import QuantumNetwork
from repro.network.node import QuantumSwitch, QuantumUser
from repro.quantum.fusion import ghz_measurement, prepare_bell_pair
from repro.quantum.noise import LinkModel, SwapModel
from repro.quantum.stabilizer import StabilizerTableau
from repro.routing.alg1_largest_rate import largest_entanglement_rate_path
from repro.routing.compiled import snapshot_for
from repro.routing.flow_graph import FlowLikeGraph
from repro.routing.metrics import ChannelRateCache
from repro.routing.nfusion import AlgNFusion
from repro.simulation.engine import EntanglementProcessSimulator
from repro.utils.geometry import Point
from repro.utils.rng import ensure_rng
from repro.utils.tables import AsciiTable

from conftest import report

LINK = LinkModel(fixed_p=0.4)
SWAP = SwapModel(q=0.9)


def _instance(num_switches=60, num_states=10, seed=31):
    rng = ensure_rng(seed)
    network = build_network(NetworkConfig(num_switches=num_switches), rng)
    demands = generate_demands(network, num_states, rng)
    return network, demands


def test_stabilizer_star_fusion(benchmark):
    """GHZ-measure 5 switch qubits out of 5 Bell pairs (10-qubit tableau)."""

    def run():
        t = StabilizerTableau(10, np.random.default_rng(1))
        for i in range(5):
            prepare_bell_pair(t, 2 * i, 2 * i + 1)
        ghz_measurement(t, [0, 2, 4, 6, 8])
        return t

    benchmark(run)


def test_alg1_dijkstra(benchmark):
    network, demands = _instance()
    demand = demands[0]

    def run():
        return largest_entanglement_rate_path(
            network, LINK, SWAP, demand.source, demand.destination, width=2
        )

    result = benchmark(run)
    assert result is not None


def test_flow_rate_evaluation(benchmark):
    network, demands = _instance()
    result = AlgNFusion().route(network, demands, LINK, SWAP)
    flows = result.plan.flows()

    def run():
        return sum(f.entanglement_rate(network, LINK, SWAP) for f in flows)

    total = benchmark(run)
    assert total > 0


def test_full_router(benchmark):
    network, demands = _instance(num_switches=40, num_states=6)

    def run():
        return AlgNFusion().route(network, demands, LINK, SWAP)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.total_rate > 0


def _wide_flow(num_relays=64):
    """A source->destination flow fanning out over *num_relays* disjoint
    2-hop paths: 2 * num_relays edges, the vectorized evaluator's
    territory (the regression fixture's flows all sit far below the
    dispatch threshold)."""
    network = QuantumNetwork()
    network.add_node(QuantumUser(0, Point(0.0, 0.0)))
    network.add_node(QuantumUser(1, Point(2000.0, 0.0)))
    flow = FlowLikeGraph(0, 0, 1)
    for i in range(num_relays):
        relay = 2 + i
        network.add_node(
            QuantumSwitch(relay, Point(1000.0, 40.0 * i), 10)
        )
        network.add_edge(0, relay)
        network.add_edge(relay, 1)
        flow.add_path((0, relay, 1), width=1 + i % 3)
    return network, flow


def _best_eval(flows, evaluate, rounds=30):
    """Best-of-*rounds* seconds for one pass over *flows*."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for flow in flows:
            evaluate(flow)
        best = min(best, time.perf_counter() - start)
    return best


def test_equation1_evaluator_micro():
    """Scalar vs vectorized Equation-1 evaluator, bit-equal by assert.

    Two workloads: the regression fixture's admitted flows (small, the
    scalar walk's territory — this gap is why ``_VECTOR_EVAL_MIN``
    exists) and a wide synthetic fan-out flow past the dispatch
    threshold (where the numpy gathers win).  Results land in
    ``benchmarks/results/eq1_micro.txt`` + ``eq1_micro.json``.
    """
    network, demands = build_regression_instance()
    result = AlgNFusion().route(network, demands, LINK, SWAP)
    fixture_flows = [f for f in result.plan.flows() if f.num_paths]
    wide_network, wide_flow = _wide_flow()
    workloads = {
        "regression-flows": (network, fixture_flows),
        "wide-fanout-128-edges": (wide_network, [wide_flow]),
    }
    rows = []
    data = {"rounds": 30, "workloads": {}}
    for name, (net, flows) in workloads.items():
        cache = ChannelRateCache(net, LINK)
        snapshot = snapshot_for(net, LINK, cache)
        for flow in flows:  # warm programs/memos, assert bit-equality
            scalar = flow._rate_iterative(net, LINK, SWAP, {}, cache)
            vector = flow._rate_vectorized(SWAP, {}, cache, snapshot)
            assert vector == scalar
        scalar_s = _best_eval(
            flows,
            lambda f: f._rate_iterative(net, LINK, SWAP, {}, cache),
        )
        vector_s = _best_eval(
            flows,
            lambda f: f._rate_vectorized(SWAP, {}, cache, snapshot),
        )
        edges = sum(len(f.edge_widths()) for f in flows)
        per_eval = 1e6 / len(flows)
        rows.append([
            name,
            str(len(flows)),
            str(edges),
            f"{scalar_s * per_eval:.2f}",
            f"{vector_s * per_eval:.2f}",
            f"{scalar_s / vector_s:.2f}x",
        ])
        data["workloads"][name] = {
            "flows": len(flows),
            "edges": edges,
            "scalar_us_per_eval": scalar_s * per_eval,
            "vectorized_us_per_eval": vector_s * per_eval,
            "vectorized_speedup": scalar_s / vector_s,
        }
    table = AsciiTable(
        ["workload", "flows", "edges", "scalar (us)", "vectorized (us)",
         "speedup"],
    )
    for row in rows:
        table.add_row(row)
    report(
        "eq1_micro",
        "Equation-1 evaluator: scalar walk vs vectorized program "
        "(best of 30, us per flow evaluation)\n" + table.render(),
        data=data,
    )
    # The dispatch threshold must sit on the right side of both
    # workloads: vectorized wins on the wide flow.
    wide = data["workloads"]["wide-fanout-128-edges"]
    assert wide["vectorized_speedup"] > 1.0


def test_monte_carlo_trials(benchmark):
    network, demands = _instance(num_switches=40, num_states=6)
    result = AlgNFusion().route(network, demands, LINK, SWAP)
    flows = result.plan.flows()
    sim = EntanglementProcessSimulator(network, LINK, SWAP, ensure_rng(2))

    def run():
        return sum(sim.flow_rate(f, trials=50) for f in flows)

    benchmark.pedantic(run, rounds=3, iterations=1)

"""Benchmark: Monte Carlo engine throughput (reference vs vectorised)."""

from repro.network.builder import NetworkConfig, build_network
from repro.network.demands import generate_demands
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.nfusion import AlgNFusion
from repro.simulation.engine import EntanglementProcessSimulator
from repro.simulation.vectorized import VectorizedProcessSimulator
from repro.utils.rng import ensure_rng

LINK = LinkModel(fixed_p=0.4)
SWAP = SwapModel(q=0.9)
TRIALS = 400


def _flows():
    rng = ensure_rng(99)
    network = build_network(NetworkConfig(num_switches=40), rng)
    demands = generate_demands(network, 8, rng)
    plan = AlgNFusion().route(network, demands, LINK, SWAP).plan
    return network, plan.flows()


def test_reference_engine(benchmark):
    network, flows = _flows()
    sim = EntanglementProcessSimulator(network, LINK, SWAP, ensure_rng(1))

    def run():
        return [sim.flow_rate(f, TRIALS) for f in flows]

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_vectorized_engine(benchmark):
    network, flows = _flows()
    sim = VectorizedProcessSimulator(network, LINK, SWAP, ensure_rng(1))

    def run():
        return [sim.flow_rate(f, TRIALS) for f in flows]

    benchmark.pedantic(run, rounds=3, iterations=1)

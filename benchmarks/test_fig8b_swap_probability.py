"""Benchmark: regenerate Figure 8b (swap probability sweep)."""

from repro.experiments import fig8b_swap_probability

from conftest import report


def test_fig8b_swap_probability(benchmark):
    """Runs the sweep once and reports the series the paper plots."""
    sweep = benchmark.pedantic(fig8b_swap_probability, rounds=1, iterations=1)
    report("fig8b_swap_probability", sweep.to_text())
    assert sweep.series_for("ALG-N-FUSION")

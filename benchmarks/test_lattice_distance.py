"""Benchmark: lattice distance study (context for B1 / refs [20], [21]).

Prior work showed GHZ-measuring switches make the single-pair rate decay
far more slowly with distance than classic swapping on a lattice; this
bench regenerates that contrast with our routers.
"""

from repro.experiments import lattice_distance_study

from conftest import report


def test_lattice_distance(benchmark):
    sweep = benchmark.pedantic(lattice_distance_study, rounds=1, iterations=1)
    report("lattice_distance", sweep.to_text())
    advantage = sweep.series_for("advantage")
    # The n-fusion advantage must grow with distance.
    assert advantage == sorted(advantage)

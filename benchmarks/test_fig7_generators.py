"""Benchmark: regenerate Figure 7 (topology generators)."""

from repro.experiments import fig7_generators

from conftest import report


def test_fig7_generators(benchmark):
    """Runs the sweep once and reports the series the paper plots."""
    sweep = benchmark.pedantic(fig7_generators, rounds=1, iterations=1)
    report("fig7_generators", sweep.to_text())
    assert sweep.series_for("ALG-N-FUSION")

"""Benchmark: regenerate Figure 9a (qubits per switch sweep)."""

from repro.experiments import fig9a_qubits

from conftest import report


def test_fig9a_qubits(benchmark):
    """Runs the sweep once and reports the series the paper plots."""
    sweep = benchmark.pedantic(fig9a_qubits, rounds=1, iterations=1)
    report("fig9a_qubits", sweep.to_text())
    assert sweep.series_for("ALG-N-FUSION")

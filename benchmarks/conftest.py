"""Shared helpers for the benchmark harness.

Every figure/table benchmark regenerates the paper's rows/series, prints
them (visible with ``pytest -s`` or in the benchmark logs) and writes them
under ``benchmarks/results/`` so EXPERIMENTS.md can reference stable
artifacts.  Set ``REPRO_FULL=1`` for paper-scale runs; the default quick
mode shrinks network counts so the whole harness runs in minutes.

The sweeps honour ``REPRO_WORKERS`` (worker processes) and
``REPRO_CACHE_DIR`` (content-addressed result cache), so the nightly CI
tier re-runs paper-scale figures incrementally: a warm cache turns an
unchanged figure into a read.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


_BENCH_DIR = pathlib.Path(__file__).parent


@pytest.fixture(scope="session", autouse=True)
def lint_speed_guard():
    """The repo linter must stay cheap: <5s over the full ``src/`` tree.

    The ``static-analysis`` CI job and pre-push habits both assume
    ``python -m repro.lint src`` is effectively free; a rule that grows
    a quadratic scan would silently erode that.  Asserting here (the
    bench tier runs nightly at full scale) keeps the budget honest —
    and re-checks that the shipped tree stays lint-clean.
    """
    import time

    from repro.lint.engine import run_lint

    src = _BENCH_DIR.parent / "src"
    start = time.perf_counter()
    report = run_lint([src])
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0, (
        f"repro.lint took {elapsed:.2f}s over {report.files_checked} "
        "files; the linter must stay under 5s to be run on every push"
    )
    assert report.ok(), "src/ tree has lint findings:\n" + "\n".join(
        d.render() for d in report.diagnostics
    )
    yield


def pytest_collection_modifyitems(items):
    """Mark every benchmark test ``slow`` so the quick tier can deselect
    the whole tree with ``-m "not slow"``.

    The hook sees the whole session's items, so restrict the marker to
    tests collected under ``benchmarks/``.
    """
    for item in items:
        if _BENCH_DIR in item.path.parents:
            item.add_marker(pytest.mark.slow)


def report(name: str, text: str, data=None) -> None:
    """Print *text* and persist it as ``benchmarks/results/<name>.txt``.

    When *data* is given (any JSON-serializable value), a
    machine-readable twin lands at ``results/<name>.json`` so dashboards
    and regression diffs can consume the numbers without scraping the
    rendered table.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )
    print(f"\n{text}\n")

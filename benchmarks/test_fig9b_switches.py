"""Benchmark: regenerate Figure 9b (number of switches sweep)."""

from repro.experiments import fig9b_switches

from conftest import report


def test_fig9b_switches(benchmark):
    """Runs the sweep once and reports the series the paper plots."""
    sweep = benchmark.pedantic(fig9b_switches, rounds=1, iterations=1)
    report("fig9b_switches", sweep.to_text())
    assert sweep.series_for("ALG-N-FUSION")

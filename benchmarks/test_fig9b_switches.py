"""Benchmark: regenerate Figure 9b (number of switches sweep)."""

import pytest

from repro.experiments import fig9b_ext_switches, fig9b_switches
from repro.experiments.config import is_full_run

from conftest import report


def test_fig9b_switches(benchmark):
    """Runs the sweep once and reports the series the paper plots."""
    sweep = benchmark.pedantic(fig9b_switches, rounds=1, iterations=1)
    report("fig9b_switches", sweep.to_text())
    assert sweep.series_for("ALG-N-FUSION")


@pytest.mark.skipif(
    not is_full_run(),
    reason="extended switch sweep (800/1600) runs at paper scale only "
    "(REPRO_FULL=1)",
)
def test_fig9b_extended_switches(benchmark):
    """Beyond-paper switch counts, nightly-tier only."""
    sweep = benchmark.pedantic(fig9b_ext_switches, rounds=1, iterations=1)
    report("fig9b_ext_switches", sweep.to_text())
    assert sweep.x_values[-2:] == [800, 1600]
    assert sweep.series_for("ALG-N-FUSION")

"""Benchmark: timed-protocol establishment vs memory coherence time."""

from repro.experiments.protocol_study import protocol_coherence_study

from conftest import report


def test_protocol_coherence_study(benchmark):
    sweep = benchmark.pedantic(
        protocol_coherence_study, rounds=1, iterations=1
    )
    report("protocol_coherence", sweep.to_text())
    rates = sweep.series_for("protocol rate")
    expiries = sweep.series_for("expiry failures")
    # Longer memories can only help, and expiry failures can only shrink.
    assert rates == sorted(rates)
    assert expiries == sorted(expiries, reverse=True)

"""Benchmark: analytic Equation 1 vs Phase III Monte Carlo.

Not a paper figure — this is the reproduction's own validation artefact:
it quantifies the branch-independence approximation error of the routing
metric against the ground-truth process simulation.
"""

import os

from repro.experiments.config import ExperimentSetting, is_full_run
from repro.network.builder import build_network
from repro.network.demands import generate_demands
from repro.routing.nfusion import AlgNFusion
from repro.simulation.monte_carlo import estimate_plan_rate
from repro.utils.rng import ensure_rng
from repro.utils.tables import AsciiTable

from conftest import report


def run_validation():
    quick = not is_full_run()
    setting = ExperimentSetting(fixed_p=0.35, seed=4242)
    if quick:
        setting = setting.scaled_for_quick_run()
    trials = 500 if quick else 3000
    table = AsciiTable(
        ["sample", "analytic rate", "monte carlo", "stderr", "rel err"]
    )
    rng = ensure_rng(setting.seed)
    worst = 0.0
    for index in range(setting.num_networks):
        network = build_network(setting.network, rng)
        demands = generate_demands(network, setting.num_states, rng)
        result = AlgNFusion().route(
            network, demands, setting.link_model(), setting.swap_model()
        )
        estimate = estimate_plan_rate(
            network, result.plan, setting.link_model(), setting.swap_model(),
            trials=trials, rng=rng,
        )
        rel = abs(estimate.mean - result.total_rate) / max(result.total_rate, 1e-9)
        worst = max(worst, rel)
        table.add_row(
            [index, result.total_rate, estimate.mean, estimate.stderr, rel]
        )
    text = (
        "Monte Carlo validation of Equation 1 (branch-independence "
        f"approximation)\n{table.render()}"
    )
    return text, worst


def test_monte_carlo_validation(benchmark):
    text, worst = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    report("monte_carlo_validation", text)
    assert worst < 0.15  # the approximation stays within 15%

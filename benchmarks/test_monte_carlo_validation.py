"""Benchmark: analytic Equation 1 vs Phase III Monte Carlo.

Not a paper figure — this is the reproduction's own validation artefact:
it quantifies the branch-independence approximation error of the routing
metric against the ground-truth process simulation.

The comparison runs through :func:`repro.experiments.mc_validate`, i.e.
the ordinary (setting, sample, router) task harness evaluated under the
analytic and Monte-Carlo estimators, so it parallelises, shards and
caches like any sweep.  Estimation draws come from each sample seed's
dedicated substream — changing the trial count can no longer perturb
which networks are sampled (the old standalone script shared one
generator between instance generation and trials).
"""

from repro.experiments.mc_validate import mc_validate

from conftest import report


def test_monte_carlo_validation(benchmark):
    result = benchmark.pedantic(
        lambda: mc_validate(routers=["alg-n-fusion"]),
        rounds=1,
        iterations=1,
    )
    report("monte_carlo_validation", result.to_text())
    assert result.rows
    # The branch-independence approximation stays within 15%.
    assert result.worst_rel_err < 0.15

"""Benchmark: regenerate Figure 8a (link probability sweep)."""

from repro.experiments import fig8a_link_probability

from conftest import report


def test_fig8a_link_probability(benchmark):
    """Runs the sweep once and reports the series the paper plots."""
    sweep = benchmark.pedantic(fig8a_link_probability, rounds=1, iterations=1)
    report("fig8a_link_probability", sweep.to_text())
    assert sweep.series_for("ALG-N-FUSION")

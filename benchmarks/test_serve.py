"""Benchmark: incremental re-planning vs per-arrival resnapshot.

Serves the same Poisson arrival stream on the paper-default scenario
under both re-planning modes and times the whole serving loop.  The two
modes are decision-identical by construction — asserted on the full
deterministic metrics — so the only thing the incremental path buys is
speed: it must stay measurably (>= 1.3x) faster than rebuilding a
residual network per arrival, or the journal/patching machinery has
regressed into pure overhead.

Results land in ``benchmarks/results/serve.txt`` plus a
machine-readable ``serve.json`` twin (per-mode wall time, re-plan
latency percentiles, speedup).
"""

import dataclasses
import time

from repro.experiments.config import is_full_run
from repro.experiments.scenarios import parse_scenario
from repro.network.builder import build_network
from repro.routing.registry import make_router
from repro.service.arrivals import parse_arrivals, poisson_events
from repro.service.faults import fault_events, parse_faults
from repro.service.loop import REPLAN_MODES, latency_summary, run_serve
from repro.utils.rng import ensure_rng
from repro.utils.tables import AsciiTable

from conftest import report

SCENARIO = "paper-default"
ARRIVALS = "poisson:rate=2.0,hold=exp:mean=30"
SEED = 7
WARMUP = 20.0

#: Per-mode timing: best of ROUNDS full serving-loop runs.
ROUNDS = 3

#: The incremental path's acceptance bar over resnapshot.
MIN_SPEEDUP = 1.3

#: Standard fault load for the repair bench: element up-times on the
#: order of the mean holding time, so a sizeable fraction of held flows
#: is disrupted and the repair path dominates the loop.
FAULTS = "faults:link_mtbf=60,link_mttr=15,switch_p=0.01"
REPAIR = "reroute:retries=2,backoff=exp:base=0.5"


def test_serve_incremental_vs_resnapshot():
    duration = 400.0 if is_full_run() else 120.0
    scenario = parse_scenario(SCENARIO)
    network = build_network(scenario.network_config(), ensure_rng(SEED))
    setting = scenario.setting()
    arrivals = parse_arrivals(ARRIVALS)
    events = poisson_events(arrivals, SEED, len(network.users()), duration)

    timings = {}
    runs = {}
    for mode in REPLAN_MODES:
        best = float("inf")
        for _ in range(ROUNDS):
            router = make_router("alg-n-fusion", include_alg4=False)
            start = time.perf_counter()
            run = run_serve(
                network,
                setting.link_model(),
                setting.swap_model(),
                router,
                events,
                duration,
                WARMUP,
                mode,
            )
            best = min(best, time.perf_counter() - start)
        assert run.mode == mode
        timings[mode] = best
        runs[mode] = run

    # Decision parity: the modes must agree on every deterministic
    # metric — the cache keys them identically on this guarantee.
    assert (
        runs["incremental"].metrics == runs["resnapshot"].metrics
    ), "re-planning modes diverged; the serve cache key is now unsound"

    speedup = timings["resnapshot"] / timings["incremental"]
    metrics = runs["incremental"].metrics

    table = AsciiTable(
        ["mode", "loop (s)", "p50 (ms)", "p99 (ms)", "speedup"]
    )
    summaries = {}
    for mode in REPLAN_MODES:
        summaries[mode] = latency_summary(runs[mode].latencies_s)
        table.add_row([
            mode,
            f"{timings[mode]:.3f}",
            f"{summaries[mode]['p50_ms']:.2f}",
            f"{summaries[mode]['p99_ms']:.2f}",
            f"{speedup:.2f}x" if mode == "incremental" else "1.00x",
        ])
    report(
        "serve",
        f"Online serving: incremental vs resnapshot re-planning\n"
        f"scenario={SCENARIO} arrivals={ARRIVALS} duration={duration!r} "
        f"warmup={WARMUP!r} seed={SEED} (best of {ROUNDS})\n"
        + table.render()
        + f"\narrivals={metrics.arrivals} admitted={metrics.admitted} "
        f"ratio={metrics.admission_ratio:.4f} "
        f"throughput={metrics.throughput:.6f}",
        data={
            "scenario": SCENARIO,
            "arrivals": ARRIVALS,
            "duration": duration,
            "warmup": WARMUP,
            "seed": SEED,
            "rounds": ROUNDS,
            "speedup": speedup,
            "modes": {
                mode: {
                    "loop_seconds": timings[mode],
                    "latency": summaries[mode],
                }
                for mode in REPLAN_MODES
            },
            "metrics": dataclasses.asdict(metrics),
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"incremental re-planning is only {speedup:.2f}x faster than "
        f"resnapshot (bar: {MIN_SPEEDUP}x)"
    )


def test_serve_repair_incremental_vs_resnapshot():
    """Fault-injected twin of the serve bench.

    Under an active fault load every disruption triggers a repair
    re-route, so the resnapshot mode rebuilds a residual network per
    repair attempt on top of per arrival.  The incremental path patches
    banned-element masks in place and must beat it by the same >= 1.3x
    bar — the repair fast path is the whole point of session-state
    journaling surviving disruptions.
    """
    duration = 400.0 if is_full_run() else 120.0
    scenario = parse_scenario(SCENARIO)
    network = build_network(scenario.network_config(), ensure_rng(SEED))
    setting = scenario.setting()
    arrivals = parse_arrivals(ARRIVALS)
    events = poisson_events(arrivals, SEED, len(network.users()), duration)
    faults = fault_events(
        parse_faults(FAULTS), SEED, len(network.edge_keys()),
        len(network.switches()), duration,
    )

    timings = {}
    runs = {}
    for mode in REPLAN_MODES:
        best = float("inf")
        for _ in range(ROUNDS):
            router = make_router("alg-n-fusion", include_alg4=False)
            start = time.perf_counter()
            run = run_serve(
                network,
                setting.link_model(),
                setting.swap_model(),
                router,
                events,
                duration,
                WARMUP,
                mode,
                faults=faults,
                repair=REPAIR,
            )
            best = min(best, time.perf_counter() - start)
        timings[mode] = best
        runs[mode] = run

    metrics = runs["incremental"].metrics
    assert (
        metrics == runs["resnapshot"].metrics
    ), "re-planning modes diverged under faults; the serve cache key is unsound"
    assert metrics.disruptions > 0, (
        "fault load produced no disruptions; the bench is not exercising "
        "the repair path"
    )

    speedup = timings["resnapshot"] / timings["incremental"]

    table = AsciiTable(
        ["mode", "loop (s)", "repair p50 (ms)", "repair p99 (ms)", "speedup"]
    )
    summaries = {}
    for mode in REPLAN_MODES:
        summaries[mode] = latency_summary(runs[mode].repair_latencies_s)
        table.add_row([
            mode,
            f"{timings[mode]:.3f}",
            f"{summaries[mode]['p50_ms']:.2f}",
            f"{summaries[mode]['p99_ms']:.2f}",
            f"{speedup:.2f}x" if mode == "incremental" else "1.00x",
        ])
    report(
        "serve_faults",
        f"Online serving under faults: incremental vs resnapshot repair\n"
        f"scenario={SCENARIO} arrivals={ARRIVALS} faults={FAULTS} "
        f"repair={REPAIR}\nduration={duration!r} warmup={WARMUP!r} "
        f"seed={SEED} (best of {ROUNDS})\n"
        + table.render()
        + f"\narrivals={metrics.arrivals} admitted={metrics.admitted} "
        f"disruptions={metrics.disruptions} repaired={metrics.repaired} "
        f"dropped={metrics.dropped} "
        f"repair_ratio={metrics.repair_ratio:.4f} "
        f"throughput={metrics.throughput:.6f}",
        data={
            "scenario": SCENARIO,
            "arrivals": ARRIVALS,
            "faults": FAULTS,
            "repair": REPAIR,
            "duration": duration,
            "warmup": WARMUP,
            "seed": SEED,
            "rounds": ROUNDS,
            "speedup": speedup,
            "modes": {
                mode: {
                    "loop_seconds": timings[mode],
                    "repair_latency": summaries[mode],
                }
                for mode in REPLAN_MODES
            },
            "metrics": dataclasses.asdict(metrics),
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"incremental repair is only {speedup:.2f}x faster than "
        f"resnapshot (bar: {MIN_SPEEDUP}x)"
    )

"""Benchmark: regenerate Figure 9c (demanded states sweep)."""

from repro.experiments import fig9c_states

from conftest import report


def test_fig9c_states(benchmark):
    """Runs the sweep once and reports the series the paper plots."""
    sweep = benchmark.pedantic(fig9c_states, rounds=1, iterations=1)
    report("fig9c_states", sweep.to_text())
    assert sweep.series_for("ALG-N-FUSION")

"""Benchmark: Algorithm 4 / residual-spending ablation (paper V-C-3)."""

from repro.experiments import alg4_ablation

from conftest import report


def test_alg4_ablation(benchmark):
    """Full pipeline vs no-Alg-4 vs the paper-literal single Alg-3 sweep."""
    ablation = benchmark.pedantic(alg4_ablation, rounds=1, iterations=1)
    report("alg4_ablation", ablation.to_text())
    # Residual spending must help, and never hurt.
    assert ablation.improvement >= 0.0
    for _, full, no_a4, sweep in ablation.rows:
        assert full >= no_a4 - 1e-9
        assert full >= sweep - 1e-9

"""Benchmark: the cross-family topology comparison the paper never ran."""

from repro.experiments import topology_compare

from conftest import report


def test_topology_compare(benchmark):
    """All routers (incl. MCF) across every registered topology family."""
    sweep = benchmark.pedantic(topology_compare, rounds=1, iterations=1)
    report("topology_compare", sweep.to_text())
    assert sweep.series_for("ALG-N-FUSION")
    assert sweep.series_for("MCF")
    assert len(sweep.x_values) >= 4

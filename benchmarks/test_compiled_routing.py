"""Benchmark: compiled vs reference routing core on the regression fixture.

Times every pinned router on the frozen regression instance under both
values of ``REPRO_ROUTING_CORE`` and records the sequential speedups in
``benchmarks/results/compiled_routing.txt`` plus a machine-readable twin
``compiled_routing.json`` (like ``serve.json``) so the perf trajectory
is trackable across PRs.

The acceptance bar on ALG-N-FUSION is relative to the *previous*
compiled core, whose committed run on this fixture was 2.42x over
reference (64.8 ms / 26.8 ms).  The batched core had to beat that by
1.5x; the fused multi-width frontier + vectorized Equation-1 evaluator
must beat it by a further 1.25x, i.e. at least
``2.42 * 1.5 * 1.25 = 4.54`` over reference measured in the same
process — a ratio, so a slow or noisy machine shifts both sides
together instead of failing the bar (the committed run measures ~6.3x).
Rates and per-demand plans must stay bit-identical; both are asserted,
so a kernel regression fails the bench rather than silently eroding
the sweep throughput.
"""

import os
import time

from repro.experiments.regression import build_regression_instance
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.compiled import ROUTING_CORE_ENV
from repro.routing.registry import make_router
from repro.utils.tables import AsciiTable

from conftest import report

LINK = LinkModel(fixed_p=0.4)
SWAP = SwapModel(q=0.9)

#: Registry keys of the routers with pinned regression rates.
ROUTER_KEYS = ("alg-n-fusion", "q-cast", "q-cast-n", "b1")

#: Per-core timing: best of ROUNDS measured route() calls.
ROUNDS = 7

#: Reference-relative speedup of the pre-batching compiled core on
#: ALG-N-FUSION (committed ``compiled_routing.txt`` baseline).
PREVIOUS_COMPILED_SPEEDUP = 2.42

#: The batched core must beat the previous compiled core by this much.
BATCHED_OVER_PREVIOUS = 1.5

#: The fused multi-width frontier + vectorized Equation-1 evaluator
#: must beat the batched core's bar by this much on top.
FUSED_OVER_BATCHED = 1.25


def _best_time(router, network, demands):
    """(cold first-call seconds, best-of-ROUNDS seconds, last result).

    The first call pays every per-network cost — compiling the CSR
    snapshot, building rate columns and masked rows — which later calls
    reuse; reporting it separately keeps the steady-state number honest
    about what a one-shot route() costs.
    """
    start = time.perf_counter()
    result = router.route(network, demands, LINK, SWAP)
    cold = time.perf_counter() - start
    best = cold
    for _ in range(ROUNDS - 1):
        start = time.perf_counter()
        result = router.route(network, demands, LINK, SWAP)
        best = min(best, time.perf_counter() - start)
    return cold, best, result


def test_compiled_routing_speedup():
    network, demands = build_regression_instance()
    previous = os.environ.get(ROUTING_CORE_ENV)
    rows = []
    speedups = {}
    data = {
        "fixture": "regression",
        "rounds": ROUNDS,
        "previous_compiled_speedup": PREVIOUS_COMPILED_SPEEDUP,
        "speedup_floor": (
            PREVIOUS_COMPILED_SPEEDUP * BATCHED_OVER_PREVIOUS
            * FUSED_OVER_BATCHED
        ),
        "routers": {},
    }
    try:
        for key in ROUTER_KEYS:
            cold = {}
            timings = {}
            results = {}
            for core in ("reference", "compiled"):
                os.environ[ROUTING_CORE_ENV] = core
                cold[core], timings[core], results[core] = _best_time(
                    make_router(key), network, demands
                )
            assert (
                results["reference"].total_rate
                == results["compiled"].total_rate
            )
            assert (
                results["reference"].demand_rates
                == results["compiled"].demand_rates
            )
            speedups[key] = timings["reference"] / timings["compiled"]
            rows.append([
                key,
                f"{timings['reference'] * 1000:.1f}",
                f"{timings['compiled'] * 1000:.1f}",
                f"{cold['compiled'] * 1000:.1f}",
                f"{speedups[key]:.2f}x",
                f"{results['compiled'].total_rate:.6f}",
            ])
            data["routers"][key] = {
                "reference_ms": timings["reference"] * 1000,
                "compiled_ms": timings["compiled"] * 1000,
                "compiled_cold_ms": cold["compiled"] * 1000,
                "speedup": speedups[key],
                "total_rate": results["compiled"].total_rate,
            }
    finally:
        if previous is None:
            os.environ.pop(ROUTING_CORE_ENV, None)
        else:
            os.environ[ROUTING_CORE_ENV] = previous
    table = AsciiTable(
        [
            "router", "reference (ms)", "compiled (ms)", "cold (ms)",
            "speedup", "rate",
        ]
    )
    for row in rows:
        table.add_row(row)
    report(
        "compiled_routing",
        "Compiled routing core vs reference (regression fixture, "
        f"sequential, best of {ROUNDS})\n" + table.render(),
        data=data,
    )
    # The acceptance bar: the fused + vectorised core must hold a
    # 1.5 * 1.25 margin over the previous compiled core's committed
    # 2.42x on the paper's router; rates identical (asserted above).
    assert speedups["alg-n-fusion"] >= (
        PREVIOUS_COMPILED_SPEEDUP * BATCHED_OVER_PREVIOUS
        * FUSED_OVER_BATCHED
    )

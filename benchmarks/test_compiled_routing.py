"""Benchmark: compiled vs reference routing core on the regression fixture.

Times every pinned router on the frozen regression instance under both
values of ``REPRO_ROUTING_CORE`` and records the sequential speedups in
``benchmarks/results/compiled_routing.txt``.  The compiled core must
stay at least 2x faster on ALG-N-FUSION (the PR's acceptance bar) and
bit-identical — both are asserted, so a kernel regression fails the
bench rather than silently eroding the sweep throughput.
"""

import os
import time

from repro.experiments.regression import build_regression_instance
from repro.quantum.noise import LinkModel, SwapModel
from repro.routing.compiled import ROUTING_CORE_ENV
from repro.routing.registry import make_router
from repro.utils.tables import AsciiTable

from conftest import report

LINK = LinkModel(fixed_p=0.4)
SWAP = SwapModel(q=0.9)

#: Registry keys of the routers with pinned regression rates.
ROUTER_KEYS = ("alg-n-fusion", "q-cast", "q-cast-n", "b1")

#: Per-core timing: best of ROUNDS measured route() calls.
ROUNDS = 7


def _best_time(router, network, demands):
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = router.route(network, demands, LINK, SWAP)
        best = min(best, time.perf_counter() - start)
    return best, result


def test_compiled_routing_speedup():
    network, demands = build_regression_instance()
    previous = os.environ.get(ROUTING_CORE_ENV)
    rows = []
    speedups = {}
    try:
        for key in ROUTER_KEYS:
            timings = {}
            results = {}
            for core in ("reference", "compiled"):
                os.environ[ROUTING_CORE_ENV] = core
                timings[core], results[core] = _best_time(
                    make_router(key), network, demands
                )
            assert (
                results["reference"].total_rate
                == results["compiled"].total_rate
            )
            assert (
                results["reference"].demand_rates
                == results["compiled"].demand_rates
            )
            speedups[key] = timings["reference"] / timings["compiled"]
            rows.append([
                key,
                f"{timings['reference'] * 1000:.1f}",
                f"{timings['compiled'] * 1000:.1f}",
                f"{speedups[key]:.2f}x",
                f"{results['compiled'].total_rate:.6f}",
            ])
    finally:
        if previous is None:
            os.environ.pop(ROUTING_CORE_ENV, None)
        else:
            os.environ[ROUTING_CORE_ENV] = previous
    table = AsciiTable(
        ["router", "reference (ms)", "compiled (ms)", "speedup", "rate"]
    )
    for row in rows:
        table.add_row(row)
    report(
        "compiled_routing",
        "Compiled routing core vs reference (regression fixture, "
        f"sequential, best of {ROUNDS})\n" + table.render(),
    )
    # The acceptance bar: >= 2x on the paper's router; rates identical.
    assert speedups["alg-n-fusion"] >= 2.0

"""Legacy setup shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 660 editable installs fail; this shim enables
``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Entanglement routing over quantum networks using GHZ measurements "
        "(ICDCS 2023 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
